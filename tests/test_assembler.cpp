// Tests for the two-pass Thumb assembler: exact encodings against
// hand-assembled reference bytes, directives, literal pools, and diagnostics.
#include <gtest/gtest.h>

#include "ppatc/isa/assembler.hpp"

namespace ppatc::isa {
namespace {

// Assembles a single instruction at address 0 and returns its first 16-bit
// unit (little-endian).
std::uint16_t encode_one(const std::string& insn) {
  const Program p = assemble(insn + "\n");
  EXPECT_GE(p.bytes.size(), 2u);
  return static_cast<std::uint16_t>(p.bytes[0] | (p.bytes[1] << 8));
}

TEST(Encode, MovsImmediate) {
  EXPECT_EQ(encode_one("movs r3, #7"), 0x2307u);
  EXPECT_EQ(encode_one("movs r0, #255"), 0x20FFu);
}

TEST(Encode, CmpImmediate) { EXPECT_EQ(encode_one("cmp r1, #16"), 0x2910u); }

TEST(Encode, AddSubImmediate8) {
  EXPECT_EQ(encode_one("adds r2, #100"), 0x3264u);
  EXPECT_EQ(encode_one("subs r5, #1"), 0x3D01u);
}

TEST(Encode, AddSubThreeOperand) {
  EXPECT_EQ(encode_one("adds r0, r1, r2"), 0x1888u);
  EXPECT_EQ(encode_one("subs r0, r1, r2"), 0x1A88u);
  EXPECT_EQ(encode_one("adds r0, r1, #3"), 0x1CC8u);
  EXPECT_EQ(encode_one("subs r0, r1, #3"), 0x1EC8u);
}

TEST(Encode, ShiftImmediates) {
  EXPECT_EQ(encode_one("lsls r0, r1, #4"), 0x0108u);
  EXPECT_EQ(encode_one("lsrs r2, r3, #12"), 0x0B1Au);
  EXPECT_EQ(encode_one("asrs r4, r5, #31"), 0x17ECu);
}

TEST(Encode, DataProcessingRegister) {
  EXPECT_EQ(encode_one("ands r0, r1"), 0x4008u);
  EXPECT_EQ(encode_one("eors r0, r1"), 0x4048u);
  EXPECT_EQ(encode_one("adcs r2, r3"), 0x415Au);
  EXPECT_EQ(encode_one("sbcs r2, r3"), 0x419Au);
  EXPECT_EQ(encode_one("rors r2, r3"), 0x41DAu);
  EXPECT_EQ(encode_one("tst r0, r7"), 0x4238u);
  EXPECT_EQ(encode_one("negs r0, r1"), 0x4248u);
  EXPECT_EQ(encode_one("cmp r0, r1"), 0x4288u);
  EXPECT_EQ(encode_one("cmn r0, r1"), 0x42C8u);
  EXPECT_EQ(encode_one("orrs r0, r1"), 0x4308u);
  EXPECT_EQ(encode_one("muls r0, r1"), 0x4348u);
  EXPECT_EQ(encode_one("bics r0, r1"), 0x4388u);
  EXPECT_EQ(encode_one("mvns r0, r1"), 0x43C8u);
}

TEST(Encode, HiRegisterOps) {
  EXPECT_EQ(encode_one("mov r8, r1"), 0x4688u);   // rd=8 (H1), rm=1
  EXPECT_EQ(encode_one("mov r1, r8"), 0x4641u);   // rm=8
  EXPECT_EQ(encode_one("add r0, r8"), 0x4440u);
  EXPECT_EQ(encode_one("bx lr"), 0x4770u);
  EXPECT_EQ(encode_one("blx r3"), 0x4798u);
}

TEST(Encode, MovsRegisterIsLslsZero) { EXPECT_EQ(encode_one("movs r0, r1"), 0x0008u); }

TEST(Encode, LoadStoreImmediate) {
  EXPECT_EQ(encode_one("str r0, [r1, #4]"), 0x6048u);
  EXPECT_EQ(encode_one("ldr r0, [r1, #4]"), 0x6848u);
  EXPECT_EQ(encode_one("strb r2, [r3, #5]"), 0x715Au);
  EXPECT_EQ(encode_one("ldrb r2, [r3, #5]"), 0x795Au);
  EXPECT_EQ(encode_one("strh r4, [r5, #6]"), 0x80ECu);
  EXPECT_EQ(encode_one("ldrh r4, [r5, #6]"), 0x88ECu);
}

TEST(Encode, LoadStoreRegisterOffset) {
  EXPECT_EQ(encode_one("str r0, [r1, r2]"), 0x5088u);
  EXPECT_EQ(encode_one("strh r0, [r1, r2]"), 0x5288u);
  EXPECT_EQ(encode_one("strb r0, [r1, r2]"), 0x5488u);
  EXPECT_EQ(encode_one("ldrsb r0, [r1, r2]"), 0x5688u);
  EXPECT_EQ(encode_one("ldr r0, [r1, r2]"), 0x5888u);
  EXPECT_EQ(encode_one("ldrh r0, [r1, r2]"), 0x5A88u);
  EXPECT_EQ(encode_one("ldrb r0, [r1, r2]"), 0x5C88u);
  EXPECT_EQ(encode_one("ldrsh r0, [r1, r2]"), 0x5E88u);
}

TEST(Encode, SpRelative) {
  EXPECT_EQ(encode_one("str r1, [sp, #8]"), 0x9102u);
  EXPECT_EQ(encode_one("ldr r1, [sp, #8]"), 0x9902u);
  EXPECT_EQ(encode_one("add r1, sp, #16"), 0xA904u);
  EXPECT_EQ(encode_one("add sp, #24"), 0xB006u);
  EXPECT_EQ(encode_one("sub sp, #24"), 0xB086u);
}

TEST(Encode, PushPop) {
  EXPECT_EQ(encode_one("push {r0, r1, r2}"), 0xB407u);
  EXPECT_EQ(encode_one("push {r4-r7, lr}"), 0xB5F0u);
  EXPECT_EQ(encode_one("pop {r0, r1, r2}"), 0xBC07u);
  EXPECT_EQ(encode_one("pop {r4-r7, pc}"), 0xBDF0u);
}

TEST(Encode, StmLdm) {
  EXPECT_EQ(encode_one("stm r0!, {r1, r2}"), 0xC006u);
  EXPECT_EQ(encode_one("ldm r3!, {r0, r7}"), 0xCB81u);
}

TEST(Encode, ExtendAndReverse) {
  EXPECT_EQ(encode_one("sxth r0, r1"), 0xB208u);
  EXPECT_EQ(encode_one("sxtb r0, r1"), 0xB248u);
  EXPECT_EQ(encode_one("uxth r0, r1"), 0xB288u);
  EXPECT_EQ(encode_one("uxtb r0, r1"), 0xB2C8u);
  EXPECT_EQ(encode_one("rev r0, r1"), 0xBA08u);
  EXPECT_EQ(encode_one("rev16 r0, r1"), 0xBA48u);
  EXPECT_EQ(encode_one("revsh r0, r1"), 0xBAC8u);
}

TEST(Encode, Misc) {
  EXPECT_EQ(encode_one("nop"), 0xBF00u);
  EXPECT_EQ(encode_one("svc 0"), 0xDF00u);
  EXPECT_EQ(encode_one("svc 15"), 0xDF0Fu);
}

TEST(Encode, BranchOffsets) {
  // b to itself: offset = -4 -> imm11 = 0x7FE.
  const Program p = assemble("loop: b loop\n");
  EXPECT_EQ(static_cast<std::uint16_t>(p.bytes[0] | (p.bytes[1] << 8)), 0xE7FEu);
  // beq forward over one instruction: target = PC+4, offset 0 -> imm8 = 0.
  const Program q = assemble("beq skip\nnop\nskip: nop\n");
  EXPECT_EQ(static_cast<std::uint16_t>(q.bytes[0] | (q.bytes[1] << 8)), 0xD000u);
  // ... and over two instructions: offset +2 -> imm8 = 1.
  const Program r = assemble("beq skip\nnop\nnop\nskip: nop\n");
  EXPECT_EQ(static_cast<std::uint16_t>(r.bytes[0] | (r.bytes[1] << 8)), 0xD001u);
}

TEST(Encode, BlPair) {
  // bl to the next halfword pair: offset 0 from PC+4 means target = addr 4.
  const Program p = assemble("bl next\nnext: nop\n");
  const std::uint16_t hi = static_cast<std::uint16_t>(p.bytes[0] | (p.bytes[1] << 8));
  const std::uint16_t lo = static_cast<std::uint16_t>(p.bytes[2] | (p.bytes[3] << 8));
  EXPECT_EQ(hi, 0xF000u);
  EXPECT_EQ(lo, 0xF800u);  // S=0 -> J1=J2=1, imm=0
}

TEST(Directives, WordAndSymbols) {
  const Program p = assemble(R"(
.equ MAGIC, 0x1234
data:
    .word MAGIC, 7, data
)");
  EXPECT_EQ(p.symbol("data"), 0u);
  EXPECT_EQ(p.bytes[0] | (p.bytes[1] << 8), 0x1234);
  EXPECT_EQ(p.bytes[4], 7);
  EXPECT_EQ(p.bytes[8], 0);  // address of `data`
}

TEST(Directives, AlignPadsToBoundary) {
  const Program p = assemble("nop\n.align 8\nlabel: nop\n");
  EXPECT_EQ(p.symbol("label"), 8u);
  EXPECT_EQ(p.bytes.size(), 10u);
}

TEST(Directives, SpaceReserves) {
  const Program p = assemble("buf: .space 10\nafter: nop\n");
  EXPECT_EQ(p.symbol("after"), 10u);
}

TEST(Directives, EntrySymbol) {
  const Program p = assemble("nop\n_start: nop\n");
  EXPECT_EQ(p.entry, 2u);
  const Program q = assemble("nop\n");
  EXPECT_EQ(q.entry, 0u);  // default when _start is absent
}

TEST(Literals, PoolPlacedAtLtorg) {
  const Program p = assemble(R"(
    ldr r0, =0xCAFEBABE
    b over
.ltorg
over:
    nop
)");
  // Layout: ldr(2) + b(2) -> pool at 4.
  EXPECT_EQ(p.bytes[4] | (p.bytes[5] << 8) | (p.bytes[6] << 16)
            | (static_cast<std::uint32_t>(p.bytes[7]) << 24), 0xCAFEBABEu);
  // The ldr encodes offset (4 - Align(0+4,4))/4 = 0.
  EXPECT_EQ(static_cast<std::uint16_t>(p.bytes[0] | (p.bytes[1] << 8)), 0x4800u);
}

TEST(Literals, ImplicitEndPool) {
  const Program p = assemble("ldr r5, =1000000\n");
  ASSERT_EQ(p.bytes.size(), 8u);  // insn + 2 pad + literal
  EXPECT_EQ(p.bytes[4] | (p.bytes[5] << 8) | (p.bytes[6] << 16), 1000000);
}

TEST(Literals, SymbolLiterals) {
  const Program p = assemble(R"(
_start:
    ldr r0, =target
    nop
target:
    nop
)");
  // Literal holds the address of `target` (4).
  EXPECT_EQ(p.bytes[8], 4);
}

TEST(Errors, ReportLineNumbers) {
  try {
    assemble("nop\nbogus r0, r1\n");
    FAIL() << "should have thrown";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string{e.what()}.find("bogus"), std::string::npos);
  }
}

TEST(Errors, RangeChecks) {
  EXPECT_THROW(assemble("movs r0, #256\n"), AsmError);
  EXPECT_THROW(assemble("adds r0, r1, #8\n"), AsmError);
  EXPECT_THROW(assemble("lsls r0, r1, #32\n"), AsmError);
  EXPECT_THROW(assemble("str r0, [r1, #3]\n"), AsmError);     // unaligned word offset
  EXPECT_THROW(assemble("str r0, [r1, #128]\n"), AsmError);   // too far
  EXPECT_THROW(assemble("ldr r0, [sp, #1022]\n"), AsmError);  // not multiple of 4
}

TEST(Errors, BranchOutOfRange) {
  std::string src = "beq far\n";
  for (int i = 0; i < 200; ++i) src += "nop\n";
  src += "far: nop\n";
  EXPECT_THROW(assemble(src), AsmError);  // conditional range is +/-256
}

TEST(Errors, UnknownSymbol) { EXPECT_THROW(assemble("b nowhere\n"), AsmError); }

TEST(Errors, DuplicateLabel) { EXPECT_THROW(assemble("a: nop\na: nop\n"), AsmError); }

TEST(Errors, HighRegisterInLowEncoding) {
  EXPECT_THROW(assemble("adds r8, r1, r2\n"), AsmError);
  EXPECT_THROW(assemble("muls r0, r9\n"), AsmError);
}

TEST(Errors, BadRegisterLists) {
  EXPECT_THROW(assemble("push {pc}\n"), AsmError);
  EXPECT_THROW(assemble("pop {lr}\n"), AsmError);
  EXPECT_THROW(assemble("stm r0!, {lr}\n"), AsmError);
  EXPECT_THROW(assemble("push {r5-r2}\n"), AsmError);
}

TEST(Errors, UnknownDirective) { EXPECT_THROW(assemble(".bogus 4\n"), AsmError); }

TEST(Syntax, CommentsAndLabelsOnSameLine) {
  const Program p = assemble(R"(
start: movs r0, #1   @ comment
next:  movs r1, #2   ; another
       movs r2, #3   // and another
)");
  EXPECT_EQ(p.symbol("start"), 0u);
  EXPECT_EQ(p.symbol("next"), 2u);
  EXPECT_EQ(p.bytes.size(), 6u);
}

TEST(Syntax, CaseInsensitiveMnemonicsAndRegisters) {
  EXPECT_EQ(encode_one("MOVS R3, #7"), 0x2307u);
  EXPECT_EQ(encode_one("PUSH {R0, LR}"), 0xB501u);
}

TEST(Syntax, NumericBases) {
  EXPECT_EQ(encode_one("movs r0, #0x2A"), 0x202Au);
  EXPECT_EQ(encode_one("movs r0, #052"), 0x202Au);  // octal
  EXPECT_EQ(encode_one("movs r0, #'*'"), 0x202Au);
}

}  // namespace
}  // namespace ppatc::isa
