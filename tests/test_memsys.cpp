// Tests for the eDRAM models: 3T-cell SPICE characterization, sub-array
// energy accounting, and the bank-level Table II anchors.
#include <gtest/gtest.h>

#include "ppatc/common/contract.hpp"
#include "ppatc/memsys/bitcell.hpp"
#include "ppatc/memsys/edram.hpp"
#include "ppatc/memsys/subarray.hpp"
#include "ppatc/workloads/workload.hpp"

namespace ppatc::memsys {
namespace {

using namespace ppatc::units;

// Characterization runs SPICE transients; do it once per suite.
const CellCharacteristics& si_cell_cc() {
  static const CellCharacteristics cc = characterize(all_si_cell());
  return cc;
}
const CellCharacteristics& m3d_cell_cc() {
  static const CellCharacteristics cc = characterize(m3d_igzo_cnfet_cell());
  return cc;
}
const EdramBank& si_bank() {
  static const EdramBank bank{si_bank_config()};
  return bank;
}
const EdramBank& m3d_bank() {
  static const EdramBank bank{m3d_bank_config()};
  return bank;
}

TEST(Cell, SiWritesAreFast) {
  EXPECT_LT(in_picoseconds(si_cell_cc().write_delay), 100.0);
}

TEST(Cell, IgzoWritesCompleteWithinCycleDueToBoostedWwl) {
  // Paper Step 2: VWWL = 1.3 V overdrive makes the IGZO write single-cycle.
  EXPECT_LT(in_nanoseconds(m3d_cell_cc().write_delay), 2.0);
  // ... but far slower than a Si write (low mobility).
  EXPECT_GT(in_picoseconds(m3d_cell_cc().write_delay),
            10.0 * in_picoseconds(si_cell_cc().write_delay));
}

TEST(Cell, CnfetReadBeatsSiRead) {
  // High CNFET I_EFF: the M3D read stack discharges the bitline faster.
  EXPECT_LT(in_picoseconds(m3d_cell_cc().read_delay), in_picoseconds(si_cell_cc().read_delay));
}

TEST(Cell, IgzoRetentionExceeds1000Seconds) {
  // Paper Sec. II-A: >1000 s retention shown experimentally for IGZO eDRAM.
  EXPECT_GT(in_seconds(m3d_cell_cc().retention), 1000.0);
}

TEST(Cell, SiRetentionIsMicrosecondScale) {
  EXPECT_GT(in_seconds(si_cell_cc().retention), 1e-6);
  EXPECT_LT(in_seconds(si_cell_cc().retention), 1e-3);
}

TEST(Cell, RetentionRatioIsManyOrdersOfMagnitude) {
  EXPECT_GT(m3d_cell_cc().retention / si_cell_cc().retention, 1e6);
}

TEST(Cell, HoldLeakageOrdering) {
  EXPECT_LT(in_amperes(m3d_cell_cc().hold_leakage), 1e-15);
  EXPECT_GT(in_amperes(si_cell_cc().hold_leakage), 1e-13);
}

TEST(Cell, WriteEnergyIsFemtojouleScale) {
  EXPECT_GT(in_femtojoules(si_cell_cc().write_energy), 0.01);
  EXPECT_LT(in_femtojoules(si_cell_cc().write_energy), 100.0);
}

TEST(Cell, SenseMarginScalesRetentionLinearly) {
  const auto tight = characterize(m3d_igzo_cnfet_cell(), volts(0.1));
  const auto loose = characterize(m3d_igzo_cnfet_cell(), volts(0.3));
  EXPECT_NEAR(loose.retention / tight.retention, 3.0, 1e-6);
}

TEST(SubArray, GeometryValidation) {
  SubArraySpec bad;
  bad.cols = 100;  // not a multiple of 32
  EXPECT_THROW((void)characterize_subarray(bad, all_si_cell(), si_cell_cc()), ContractViolation);
}

TEST(SubArray, BitCountMatchesGeometry) {
  const auto sub = characterize_subarray(SubArraySpec{}, all_si_cell(), si_cell_cc());
  EXPECT_EQ(sub.bits, 128u * 128u);  // 2 kB
}

TEST(SubArray, RefreshRowCostsMoreThanWordRead) {
  const auto sub = characterize_subarray(SubArraySpec{}, all_si_cell(), si_cell_cc());
  EXPECT_GT(sub.refresh_row_energy, sub.read_energy);
}

TEST(SubArray, EnergiesArePicojouleScale) {
  const auto sub = characterize_subarray(SubArraySpec{}, all_si_cell(), si_cell_cc());
  EXPECT_GT(in_picojoules(sub.read_energy), 0.01);
  EXPECT_LT(in_picojoules(sub.read_energy), 10.0);
  EXPECT_GT(in_picojoules(sub.write_energy), 0.01);
  EXPECT_LT(in_picojoules(sub.write_energy), 10.0);
}

TEST(SubArray, BiggerArraysLoadLinesMore) {
  SubArraySpec big;
  big.rows = 256;
  big.cols = 256;
  const auto small = characterize_subarray(SubArraySpec{}, all_si_cell(), si_cell_cc());
  const auto large = characterize_subarray(big, all_si_cell(), si_cell_cc());
  EXPECT_GT(large.wordline_cap, small.wordline_cap);
  EXPECT_GT(large.bitline_cap, small.bitline_cap);
  EXPECT_GT(large.read_energy, small.read_energy);
  EXPECT_GT(large.access_delay, small.access_delay);
}

TEST(Bank, SubArrayCountFor64kB) {
  EXPECT_EQ(si_bank().subarray_count(), 32);
  EXPECT_EQ(si_bank().total_rows(), 32u * 128u);
}

TEST(Bank, AreaMatchesTableII) {
  // Paper: 0.068 mm^2 (Si) vs 0.025 mm^2 (M3D) for 64 kB.
  EXPECT_NEAR(in_square_millimetres(si_bank().area()), 0.068, 0.001);
  EXPECT_NEAR(in_square_millimetres(m3d_bank().area()), 0.025, 0.001);
}

TEST(Bank, M3dStackingShrinksFootprint) {
  EXPECT_LT(in_square_millimetres(m3d_bank().area()),
            0.5 * in_square_millimetres(si_bank().area()));
}

TEST(Bank, BothMeetTimingAt500MHz) {
  EXPECT_TRUE(si_bank().meets_timing(megahertz(500)));
  EXPECT_TRUE(m3d_bank().meets_timing(megahertz(500)));
}

TEST(Bank, NeitherMeets5GHz) {
  EXPECT_FALSE(si_bank().meets_timing(gigahertz(5.0)));
  EXPECT_FALSE(m3d_bank().meets_timing(gigahertz(5.0)));
}

TEST(Bank, SiNeedsRefreshM3dBarely) {
  EXPECT_GT(in_microwatts(si_bank().refresh_power()), 1.0);
  EXPECT_LT(in_microwatts(m3d_bank().refresh_power()), 0.01);
}

TEST(Bank, M3dAccessEnergyIsLower) {
  // Smaller footprint -> shorter global bus -> lower access energy.
  EXPECT_LT(in_picojoules(m3d_bank().read_access_energy()),
            in_picojoules(si_bank().read_access_energy()));
}

TEST(Bank, MemoryEnergyMatchesTableIIOnMatmult) {
  const auto run = workloads::run_workload(workloads::matmult_int());
  ASSERT_TRUE(run.checksum_ok);
  const auto si = memory_energy(si_bank(), run.stats, run.cycles, megahertz(500));
  const auto m3d = memory_energy(m3d_bank(), run.stats, run.cycles, megahertz(500));
  EXPECT_NEAR(in_picojoules(si.per_cycle), 18.0, 0.15);   // Table II: 18.0 pJ
  EXPECT_NEAR(in_picojoules(m3d.per_cycle), 15.5, 0.15);  // Table II: 15.5 pJ
}

TEST(Bank, EnergyReportComponentsSum) {
  const auto run = workloads::run_workload(workloads::crc32(2));
  const auto rep = memory_energy(si_bank(), run.stats, run.cycles, megahertz(500));
  EXPECT_NEAR(in_picojoules(rep.total),
              in_picojoules(rep.access_energy + rep.refresh_energy + rep.static_energy), 1e-6);
  EXPECT_GT(rep.access_energy, Energy{});
  EXPECT_GT(rep.static_energy, Energy{});
}

TEST(Bank, PerCycleEnergyIndependentOfWorkloadLengthForSameMix) {
  // Same workload at different repeat counts: per-cycle energy converges.
  const auto r1 = workloads::run_workload(workloads::statemate(4));
  const auto r2 = workloads::run_workload(workloads::statemate(16));
  const auto e1 = memory_energy(si_bank(), r1.stats, r1.cycles, megahertz(500));
  const auto e2 = memory_energy(si_bank(), r2.stats, r2.cycles, megahertz(500));
  EXPECT_NEAR(in_picojoules(e1.per_cycle), in_picojoules(e2.per_cycle),
              0.05 * in_picojoules(e1.per_cycle));
}

TEST(Bank, ConfigValidation) {
  BankConfig cfg = si_bank_config();
  cfg.capacity_bytes = 3000;  // not a whole number of sub-arrays
  EXPECT_THROW(EdramBank{cfg}, ContractViolation);
}

TEST(Bank, LowerClockReducesAccessShareNotStaticPower) {
  const auto run = workloads::run_workload(workloads::crc32(2));
  const auto fast = memory_energy(si_bank(), run.stats, run.cycles, megahertz(500));
  const auto slow = memory_energy(si_bank(), run.stats, run.cycles, megahertz(250));
  // Same access energy, double the leakage time -> higher per-cycle energy.
  EXPECT_NEAR(in_picojoules(fast.access_energy), in_picojoules(slow.access_energy), 1e-6);
  EXPECT_GT(in_picojoules(slow.per_cycle), in_picojoules(fast.per_cycle));
}

}  // namespace
}  // namespace ppatc::memsys
