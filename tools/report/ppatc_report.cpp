// ppatc-report: compare run manifests (ppatc::obs::report JSON) against each
// other or against committed goldens, and render observability artifacts.
//
//   ppatc-report diff [--json] [--verbose] <a.json> <b.json>
//       Prints the per-key drift between two manifests (b is the reference
//       side whose tolerances apply). Always exits 0 unless a file is
//       unreadable — diff is for humans and scripts that want the report.
//
//   ppatc-report check [--json] <run.json> <golden.json>
//       Same comparison, but exits non-zero when the run drifted from the
//       golden, naming every offending key. This is the CI gate.
//
//   ppatc-report perf-compare [--tolerance <frac>] <run.json> <baseline.json>
//       Direction-aware performance comparison: gauges, histogram p50/p95,
//       and numeric results of the baseline are checked against the run, and
//       any move in the bad direction (slower latency, lower throughput)
//       beyond the tolerance (default 0.15 = 15%) exits non-zero.
//       Improvements never fail. This is the perf-smoke gate.
//
//   ppatc-report timeline [--top N] <bundle-or-trace.json>
//       Renders a diagnostic bundle (PPATC_DIAG_DIR) or a Chrome trace
//       (PPATC_TRACE) as a human-readable per-thread timeline with the
//       failure point marked. With --top N, instead summarizes the N hottest
//       spans per thread by wall time. Exits 2 on unreadable/malformed input.
//
//   ppatc-report flamegraph [--top N] [--svg <path>] <profile.folded>
//       Renders a folded profile (PPATC_PROFILE / obs::write_profile) as a
//       sorted self/total-time table; --svg additionally writes a standalone
//       flamegraph SVG. Exits 2 on unreadable/malformed input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/prof.hpp"

#include "ppatc/common/contract.hpp"
#include "ppatc/obs/report.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ppatc-report diff  [--json] [--verbose] <a.json> <b.json>\n"
               "       ppatc-report check [--json] <run.json> <golden.json>\n"
               "       ppatc-report perf-compare [--tolerance <frac>] <run.json> "
               "<baseline.json>\n"
               "       ppatc-report timeline [--top N] <bundle-or-trace.json>\n"
               "       ppatc-report flamegraph [--top N] [--svg <path>] <profile.folded>\n");
  return 2;
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in{path};
  if (!in.good()) {
    std::fprintf(stderr, "ppatc-report: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

// Parses a trailing `[--top N]` + one positional path. Returns false (after
// printing the problem) on anything else. `top` keeps its caller default
// when the flag is absent.
bool parse_top_and_path(int argc, char** argv, int first, std::size_t& top,
                        const char*& path) {
  path = nullptr;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ppatc-report: --top needs a value\n");
        return false;
      }
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v == 0) {
        std::fprintf(stderr, "ppatc-report: bad --top '%s'\n", argv[i]);
        return false;
      }
      top = static_cast<std::size_t>(v);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "ppatc-report: unknown option '%s'\n", argv[i]);
      return false;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "ppatc-report: too many arguments\n");
      return false;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "ppatc-report: missing input file\n");
    return false;
  }
  return true;
}

int run_timeline(int argc, char** argv) {
  std::size_t top = 0;  // 0 = full timeline, N = hottest-span summary
  const char* path = nullptr;
  if (!parse_top_and_path(argc, argv, 2, top, path)) return usage();
  std::string text;
  if (!read_file(path, text)) return 2;
  try {
    const std::string out = top > 0 ? ppatc::obs::render_top_spans(text, top)
                                    : ppatc::obs::render_timeline(text);
    std::fputs(out.c_str(), stdout);
  } catch (const ppatc::ContractViolation& e) {
    std::fprintf(stderr, "ppatc-report: %s\n", e.what());
    return 2;
  }
  return 0;
}

int run_flamegraph(int argc, char** argv) {
  std::size_t top = 30;
  const char* svg_path = nullptr;
  const char* path = nullptr;
  // --svg takes a value, which parse_top_and_path cannot express; strip it
  // first and hand the rest through.
  std::vector<char*> rest;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--svg") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ppatc-report: --svg needs a path\n");
        return usage();
      }
      svg_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!parse_top_and_path(static_cast<int>(rest.size()), rest.data(), 0, top, path)) {
    return usage();
  }
  std::string text;
  if (!read_file(path, text)) return 2;
  try {
    const ppatc::obs::FoldedProfile profile = ppatc::obs::parse_folded(text);
    std::fputs(ppatc::obs::render_flame_table(profile, top).c_str(), stdout);
    if (svg_path != nullptr) {
      std::ofstream out{svg_path};
      if (!out.good()) {
        std::fprintf(stderr, "ppatc-report: cannot write %s\n", svg_path);
        return 2;
      }
      out << ppatc::obs::render_flame_svg(profile);
      out.close();
      if (!out.good()) {
        std::fprintf(stderr, "ppatc-report: failed writing %s\n", svg_path);
        return 2;
      }
      std::printf("flamegraph SVG written to %s\n", svg_path);
    }
  } catch (const ppatc::ContractViolation& e) {
    std::fprintf(stderr, "ppatc-report: %s\n", e.what());
    return 2;
  }
  return 0;
}

struct Args {
  bool json = false;
  bool verbose = false;
  double tolerance = 0.15;
  std::string a;
  std::string b;
  bool ok = false;
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  std::string positional[2];
  int npos = 0;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      args.verbose = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ppatc-report: --tolerance needs a value\n");
        return args;
      }
      char* end = nullptr;
      args.tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || args.tolerance < 0.0) {
        std::fprintf(stderr, "ppatc-report: bad --tolerance '%s'\n", argv[i]);
        return args;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "ppatc-report: unknown option '%s'\n", argv[i]);
      return args;
    } else if (npos < 2) {
      positional[npos++] = argv[i];
    } else {
      std::fprintf(stderr, "ppatc-report: too many arguments\n");
      return args;
    }
  }
  if (npos != 2) return args;
  args.a = positional[0];
  args.b = positional[1];
  args.ok = true;
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "timeline") return run_timeline(argc, argv);
  if (cmd == "flamegraph") return run_flamegraph(argc, argv);
  if (cmd != "diff" && cmd != "check" && cmd != "perf-compare") return usage();
  const Args args = parse_args(argc, argv, 2);
  if (!args.ok) return usage();

  namespace obs = ppatc::obs;
  obs::Manifest run;
  obs::Manifest golden;
  try {
    run = obs::read_manifest(args.a);
    golden = obs::read_manifest(args.b);
  } catch (const ppatc::ContractViolation& e) {
    std::fprintf(stderr, "ppatc-report: %s\n", e.what());
    return 2;
  }

  if (cmd == "perf-compare") {
    const obs::PerfReport p = obs::perf_compare_manifests(run, golden, args.tolerance);
    std::fputs(obs::format_perf_compare(p).c_str(), stdout);
    if (p.pass()) {
      std::printf("perf-compare: PASS (%s vs %s)\n", args.a.c_str(), args.b.c_str());
      return 0;
    }
    std::fprintf(stderr, "perf-compare: FAIL — run regressed from baseline; offending keys:\n");
    for (const auto& k : p.offending_keys()) std::fprintf(stderr, "  %s\n", k.c_str());
    return 1;
  }

  const obs::DiffReport d = obs::diff_manifests(run, golden);
  if (args.json) {
    std::fputs(obs::diff_to_json(d).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(obs::format_diff(d, args.verbose).c_str(), stdout);
  }

  if (cmd == "diff") return 0;
  if (d.clean()) {
    if (!args.json) std::printf("check: PASS (%s vs %s)\n", args.a.c_str(), args.b.c_str());
    return 0;
  }
  std::fprintf(stderr, "check: FAIL — run drifted from golden; offending keys:\n");
  for (const auto& k : d.offending_keys()) std::fprintf(stderr, "  %s\n", k.c_str());
  return 1;
}
