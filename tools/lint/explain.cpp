// Rule documentation: the --explain table. One entry per registered rule —
// a test asserts the table covers all_rules() exactly, so adding a rule
// without documenting it fails CI. SARIF reportingDescriptors reuse the
// summaries, keeping the CLI and code-scanning descriptions identical.
#include <sstream>
#include <stdexcept>

#include "lint_core.hpp"

namespace ppatc::lint {

const std::map<std::string, RuleExplain>& rule_explanations() {
  static const std::map<std::string, RuleExplain> kTable{
      {"determinism",
       {"No wall-clock or nondeterministic-seed source may appear in src/.",
        "Every evaluation path must be bit-reproducible for a fixed seed: the golden "
        "manifests diff results across thread counts and machines, so rand(), "
        "std::random_device, time(NULL), system_clock or gettimeofday anywhere in model "
        "code silently breaks the reproducibility gate.",
        "src/core/optimize.cpp:41: banned nondeterminism source 'std::random_device'",
        "// ppatc-lint: allow(determinism) on the line (or the line above), or a "
        "baseline entry 'determinism <file>:<line> -- <rationale>'"}},
      {"determinism-taint",
       {"Values derived from pointer identity, thread identity or unordered iteration "
        "order must not reach RunManifest::record* or a `// ppatc: cache-key` site.",
        "A pointer cast to an integer, std::hash of a pointer, `this`-derived keys, "
        "thread::id/gettid and unordered-container iteration order all vary run to run; "
        "if such a value flows — possibly through several calls — into a recorded or "
        "cache-key result, golden manifests and content-addressed caches go stale "
        "nondeterministically. The dataflow engine tracks the value across function "
        "boundaries and the finding names the full source -> sink path.",
        "src/demo/bad_taint.cpp:12: 'key' derived from reinterpret_cast of a pointer to "
        "an integer reaches RunManifest::record; Path: reinterpret_cast (...:7) -> "
        "fingerprint -> log_run -> RunManifest::record",
        "// ppatc-lint: allow(determinism-taint) on the sink line or the enclosing "
        "function's definition line, or a baseline entry with a rationale"}},
      {"env-allowlist",
       {"std::getenv is permitted only in the files listed in "
        "tools/lint/env_allowlist.toml.",
        "Model code must not read the environment: results would depend on invisible "
        "ambient state. Only the blessed runtime/observability configuration sites "
        "(thread count, tracing, flight recorder, profiler, manifest paths) may. The "
        "allowlist is declarative and stale entries — files that no longer exist — are "
        "themselves findings, so the list can only shrink.",
        "src/spice/solver.cpp:88: std::getenv outside the environment allowlist",
        "// ppatc-lint: allow(env-allowlist) on the call line, or add the file to "
        "tools/lint/env_allowlist.toml with a comment saying which variables and why"}},
      {"fp-reduction-order",
       {"Floating-point accumulators inside parallel lambdas must follow the "
        "chunk-indexed merge discipline.",
        "Float addition is not associative: `sum += x` on a captured accumulator inside "
        "a parallel_for/parallel_reduce body makes the final value depend on chunk "
        "scheduling, so results drift across thread counts. Writing out[i] or "
        "partials[chunk.index] and folding serially afterwards is order-fixed. The rule "
        "also follows helpers: a callee that accumulates into a double& parameter on "
        "the lambda's behalf is the same bug one call deeper.",
        "src/demo/bad_fp_reduction.cpp:14: floating-point accumulator 'sum' is "
        "compound-assigned inside a parallel region",
        "// ppatc-lint: allow(fp-reduction-order) on the accumulation line or the "
        "lambda's first line, or a baseline entry with a rationale"}},
      {"interproc-units-escape",
       {"Raw doubles born from in_*() unwraps keep their (dimension, unit) tag across "
        "call and return edges; cross-function mismatches are flagged.",
        "The brace-local units-escape rule stops at the function boundary, but a raw "
        "double returned from a helper or passed as a parameter is exactly as unit-less "
        "to the type system. The dataflow summaries carry the tag through returns and "
        "into callee parameter expectations, so seconds + joules is caught even when "
        "the two unwraps live in different functions.",
        "src/demo/bad_units_chain.cpp:21: 'busted' carries (Duration, in_seconds) from "
        "in_seconds at bad_units_chain.cpp:9, through unwrap_runtime but is combined "
        "with 'j' carrying (Energy, in_joules)",
        "// ppatc-lint: allow(interproc-units-escape) on the mixing line or the "
        "enclosing function's definition line, or a baseline entry with a rationale"}},
      {"layering",
       {"The include graph over src/<module>/ must stay inside the DAG declared in "
        "tools/lint/layering.toml.",
        "Module boundaries are the project's dependency architecture; an undeclared "
        "include silently couples layers and eventually makes the physics core depend "
        "on the observability stack (or worse, cyclically). The declared DAG is "
        "validated — unknown modules, self-deps and cycles are parse errors.",
        "src/core/tcdp.cpp:3: include of \"spice/solver.hpp\" violates the declared "
        "layering (core may not include spice)",
        "// ppatc-lint: allow(layering) on the include line, or declare the edge in "
        "tools/lint/layering.toml if the dependency is intended"}},
      {"lifetime",
       {"Functions returning string_view, span or a reference must not return a "
        "body-local or a temporary.",
        "The referent dies when the function returns; the caller reads freed stack "
        "memory. Statics, parameters and members outlive the call and stay legal.",
        "src/obs/report.cpp:52: returns body-local 'name' (declared line 49) from a "
        "function returning a view; the local dies at end of scope",
        "// ppatc-lint: allow(lifetime) on the return line, or a baseline entry"}},
      {"noexcept-escape",
       {"A noexcept function must not transitively reach a throw with no try/catch or "
        "noexcept barrier on the path.",
        "An exception escaping a noexcept frame is std::terminate at runtime — in this "
        "codebase that means a crashed sweep hours in. The call-graph rule walks the "
        "whole cone, so the throw may be several calls deep.",
        "src/iss/core.cpp:120: noexcept function 'step' reaches 'throw' via decode -> "
        "illegal_opcode",
        "// ppatc-lint: allow(noexcept-escape) on the function's definition line, or a "
        "baseline entry with a rationale"}},
      {"obs-name-literal",
       {"Metric, span and flight-event names at obs call sites must be string "
        "literals.",
        "The flight rings store the name pointer and the metrics registry interns names "
        "for the process lifetime: a runtime-built name either dangles or explodes "
        "cardinality. Literals are also greppable, which keeps dashboards honest.",
        "src/spice/solver.cpp:71: obs::counter name is not a string literal",
        "// ppatc-lint: allow(obs-name-literal) on the call line (the obs module "
        "itself is exempt)"}},
      {"parallel-safety",
       {"Lambdas handed to the parallel runtime must be chunk-pure: no writes to "
        "shared state that are not index-addressed output slots.",
        "The deterministic pool's contract is that chunks commute: writes to bare "
        "by-reference captures, mutating container calls on shared objects, mutexes "
        "(serializing hides the nondeterminism, it does not remove it) and "
        "thread-identity APIs all make results depend on scheduling.",
        "src/demo/bad_parallel.cpp:9: write to shared 'total' inside a parallel region "
        "is not a chunk-local output slot",
        "// ppatc-lint: allow(parallel-safety) on the offending line"}},
      {"pragma-once",
       {"Every public header carries #pragma once.",
        "Include-guard drift is invisible until a double-inclusion breaks a build "
        "somewhere else; the project standardizes on #pragma once and checks it "
        "mechanically.",
        "include/ppatc/core/tcdp.hpp:1: public header missing #pragma once",
        "// ppatc-lint: allow(pragma-once) on the first line"}},
      {"realtime-purity",
       {"Functions reachable from parallel lambda bodies, the ISS dispatch loop and "
        "the flight-recorder paths must not allocate, lock or perform I/O.",
        "Those paths run on the measurement-critical inner loops: a malloc or a mutex "
        "in the cone shows up as timing noise (or a deadlock) under load. "
        "static/thread_local initializers are recognized as first-call-only lazy init "
        "and their edges pruned.",
        "src/iss/core.cpp:88: 'format_trace' allocates (std::string) and is reachable "
        "from the threaded-dispatch loop via run_threaded -> dispatch",
        "// ppatc-lint: allow(realtime) on the call or hazard line; the runtime's own "
        "scheduling machinery is exempt via Config::realtime_exempt"}},
      {"signal-safety",
       {"Functions transitively reachable from a registered signal handler may only "
        "touch the POSIX async-signal-safe allowlist.",
        "A malloc, std::string, iostream, lock or function-local static inside a "
        "handler's cone deadlocks or corrupts state when the signal lands mid-library. "
        "Internal helpers audited by hand are annotated `// ppatc-lint: signal-safe`.",
        "src/obs/flight.cpp:140: 'flush_ring' reachable from SIGSEGV handler uses "
        "'snprintf' — not on the async-signal-safe allowlist",
        "// ppatc-lint: allow(signal-safety) on the site, or annotate the function "
        "`// ppatc-lint: signal-safe` after auditing it"}},
      {"unit-typed-api",
       {"Public headers must not declare raw double parameters or fields whose names "
        "imply a physical dimension when a ppatc::units strong type exists.",
        "A `double width_um` crosses the API boundary with its unit in the name only; "
        "the caller passing millimetres compiles fine and corrupts every downstream "
        "number. The units strong types make the conversion explicit at the boundary.",
        "include/ppatc/core/stack.hpp:33: raw double parameter 'energy_j' should be "
        "units::Energy",
        "// ppatc-lint: allow(unit-typed-api) on the declaration line"}},
      {"units-escape",
       {"Within one scope, raw doubles unwrapped via in_*() keep a (dimension, unit) "
        "tag; mixes, wrong-factory re-wraps and raw .value() calls are flagged.",
        "After an unwrap the type system is blind: seconds + joules is just double + "
        "double. The brace-local tag catches the mix while the provenance is still in "
        "sight (the interproc-units-escape rule extends this across calls).",
        "src/carbon/embodied.cpp:61: 'area' (Area, unwrapped via in_square_centimetres) "
        "and 'power' (Power, via in_watts) mix different dimensions in raw double "
        "arithmetic",
        "// ppatc-lint: allow(units-escape) on the mixing line"}},
      {"unordered-iter",
       {"No range-for over std::unordered_{map,set} instances.",
        "Iteration order is implementation-defined: any fold or emission over it is a "
        "nondeterminism leak. Sort the keys first, or use the project's ordered "
        "containers; single-element containers and immediately-sorted folds escape.",
        "src/memsys/cost.cpp:77: range-for over unordered container 'by_channel'",
        "// ppatc-lint: allow(unordered-iter) on the loop line"}},
  };
  return kTable;
}

namespace {

void append_explanation(std::ostringstream& os, const std::string& rule,
                        const RuleExplain& ex) {
  os << rule << "\n";
  os << std::string(rule.size(), '=') << "\n";
  os << "  what:        " << ex.summary << "\n";
  os << "  why:         " << ex.rationale << "\n";
  os << "  example:     " << ex.example << "\n";
  os << "  suppression: " << ex.suppression << "\n";
}

}  // namespace

std::string explain_rule(const std::string& rule) {
  std::ostringstream os;
  if (rule == "all") {
    bool first = true;
    for (const std::string& name : all_rules()) {
      if (!first) os << "\n";
      first = false;
      append_explanation(os, name, rule_explanations().at(name));
    }
    return os.str();
  }
  const auto it = rule_explanations().find(rule);
  if (it == rule_explanations().end()) {
    throw std::runtime_error{"--explain: unknown rule '" + rule +
                             "' (use one of the --rules names, or 'all')"};
  }
  append_explanation(os, rule, it->second);
  return os.str();
}

}  // namespace ppatc::lint
