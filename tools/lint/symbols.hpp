// Symbol indexer: the per-file front half of the interprocedural analyzer.
//
// From one file's token stream (lexer.hpp) it extracts:
//   * function definitions — namespace/class-qualified display names,
//     noexcept-ness, `// ppatc-lint: signal-safe` annotations, try/catch
//     barriers, throw sites, and the body token range,
//   * call sites inside each body — unqualified callee name, qualifier chain,
//     member/qualified flags, and whether the call happens inside a
//     `static`/`thread_local` initializer (the first-call-only lazy-init
//     escape the realtime rule honors),
//   * root registrations — handler names assigned to `sa_handler` /
//     `sa_sigaction` or passed to `signal()` (signal-safety roots) and
//     callables passed to `std::set_terminate` (terminate roots),
//   * synthetic function records for lambda bodies handed to parallel_for /
//     parallel_for_chunks / parallel_reduce / parallel_invoke (the
//     realtime-purity roots),
//   * the per-line allow() suppression table, so the interprocedural rules
//     can honor suppressions without re-reading the file.
//
// Like the rest of the analyzer this is a token-stream approximation, not a
// parse: templates are not instantiated, the preprocessor is not run (macro
// *bodies* are invisible; macro call sites appear as ordinary calls), and
// overloads are not resolved — the call graph links a call to every
// definition sharing its unqualified name. Destructors and operators are not
// indexed. The consuming rules are written to stay conservative under these
// approximations: unresolved calls are recorded, never dropped.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace ppatc::lint {

/// One call site inside a function body.
struct CallSite {
  std::string name;       ///< unqualified callee name (last identifier)
  std::string qualifier;  ///< "std", "runtime::detail", ... ("" when unqualified)
  int line = 0;           ///< 1-based
  int col = 0;            ///< 1-based
  bool member = false;    ///< obj.name(...) / ptr->name(...)
  /// The call sits in a `static` / `thread_local` initializer statement: it
  /// runs once per process (or thread), so the realtime rule's lazy-init
  /// escape prunes the edge.
  bool first_call_only = false;
};

/// One occurrence of a hazard identifier inside a function body: a token
/// from the union of the signal-safety and realtime-purity ban lists
/// (allocators, formatted I/O, stream types, std::string, locks, `static`).
/// Recorded at index time so the transitive rules never need the token
/// stream; each rule filters the union down to its own ban set.
struct HazardToken {
  std::string text;
  int line = 0;
  int col = 0;
  /// The token sits in a `static` / `thread_local` initializer statement
  /// (the realtime rule's lazy-init escape; the signal rule still flags it).
  bool first_call_only = false;
};

/// One declared parameter of an indexed function (or parallel lambda).
/// Parsed from the signature's token range for the dataflow layer: the name
/// keys the initial symbol-table entry, `by_ref`+`is_fp` mark candidate
/// floating-point accumulator parameters (`double& acc`).
struct ParamInfo {
  std::string name;     ///< "" for unnamed parameters (position still counts)
  bool by_ref = false;  ///< declared `&` / `&&` at the top level
  bool is_fp = false;   ///< declared double / float at the top level
};

/// One function definition (or a synthetic record for a parallel lambda).
struct FunctionDef {
  std::string name;   ///< unqualified name ("<parallel-lambda>" when synthetic)
  std::string qname;  ///< scope-qualified display name
  /// Enclosing lexical scope ("ppatc::spice::Simulator"; "" at global scope).
  /// Unqualified calls only resolve to definitions whose scope is a prefix of
  /// the caller's — the token-stream model of C++ unqualified name lookup.
  /// Synthetic lambda records inherit the enclosing function's scope.
  std::string scope;
  int line = 0;       ///< 1-based definition line
  int col = 0;        ///< 1-based column of the name token
  bool is_noexcept = false;          ///< unconditional `noexcept` on the signature
  bool annotated_signal_safe = false;  ///< `// ppatc-lint: signal-safe` on/above the def line
  bool has_try = false;              ///< body contains a try block (exception barrier)
  bool is_parallel_lambda = false;   ///< synthetic record: a parallel-runtime lambda body
  std::vector<int> throw_lines;      ///< lines of `throw` tokens in the body
  std::vector<CallSite> calls;       ///< call sites in the body (nested lambdas included)
  std::vector<HazardToken> hazards;  ///< hazard identifiers in the body
  std::vector<ParamInfo> params;     ///< declared parameters, in position order
  /// Body token range into FileIndex::tokens: body_open is the '{', body_close
  /// the matching '}'. The dataflow layer re-walks this range with a symbol
  /// table; the cone rules never need it. Both 0 when the body is unknown.
  std::size_t body_open = 0;
  std::size_t body_close = 0;
};

/// Everything the interprocedural rules need from one file.
struct FileIndex {
  std::string rel;  ///< path relative to the scan root, '/'-separated
  std::vector<FunctionDef> functions;
  std::vector<std::string> signal_roots;     ///< handler names registered via sigaction/signal
  std::vector<std::string> terminate_roots;  ///< hooks passed to std::set_terminate
  std::vector<std::vector<std::string>> allowed;  ///< per-line allow() rules (0-based)
  /// The full token stream the indexes were built from, retained so the
  /// dataflow layer can re-walk function bodies (FunctionDef::body_open /
  /// body_close index into this) without re-reading the file.
  std::vector<Token> tokens;
  /// 1-based lines carrying a `// ppatc: cache-key` annotation: any call on
  /// (or directly below) such a line is a determinism-taint sink.
  std::vector<int> cache_key_lines;

  /// Is `line` (1-based) annotated `// ppatc: cache-key`, on its own line or
  /// the line directly above (the same convention allow() uses)?
  [[nodiscard]] bool cache_key_at(int line) const {
    for (const int l : cache_key_lines) {
      if (l == line || l == line - 1) return true;
    }
    return false;
  }

  /// allow() lookup for a 1-based source line (same line or line above).
  [[nodiscard]] bool line_allows(int line, const std::string& rule) const {
    return line > 0 &&
           is_rule_allowed(allowed, static_cast<std::size_t>(line - 1), rule);
  }
};

/// Indexes one file's contents. `rel` is recorded verbatim.
[[nodiscard]] FileIndex index_file(const std::string& rel, const std::string& contents);

}  // namespace ppatc::lint
