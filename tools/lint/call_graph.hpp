// Whole-repo call graph over the per-file symbol indexes (symbols.hpp).
//
// Resolution is name-based and conservative, with one precision refinement.
// Member calls (`x.f()`) and qualified calls (`a::b::f()`) link to EVERY
// definition sharing the unqualified name (overloads, virtual overrides and
// same-named members all become edges — receiver types and namespace aliases
// are invisible to the token stream, and the transitive rules must never
// miss a path). Unqualified free calls are filtered by scope visibility:
// they only link to definitions whose enclosing scope is a "::"-prefix of
// the caller's scope, which is what C++ unqualified lookup actually does.
// ADL and using-directives are not modeled; a call those would have found
// degrades to an unresolved external, not a silent drop. Calls that resolve
// to nothing — std:: functions, macros, function pointers, externals,
// scope-filtered collisions — are recorded as unresolved, never dropped;
// each rule decides what an unresolved callee means (signal-safety checks
// it against the async-signal-safe allowlist, noexcept-escape against a
// known-throwing list, realtime-purity ignores it).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "symbols.hpp"

namespace ppatc::lint {

/// The graph. Node, edge, and unresolved records hold pointers into the
/// FileIndex vector handed to build_call_graph, which must outlive the graph.
struct CallGraph {
  struct Node {
    const FunctionDef* def = nullptr;
    const FileIndex* file = nullptr;
  };
  struct Edge {
    std::size_t caller = 0;  ///< node index
    std::size_t callee = 0;  ///< node index
    const CallSite* site = nullptr;
  };
  struct Unresolved {
    std::size_t caller = 0;
    const CallSite* site = nullptr;
  };

  std::vector<Node> nodes;  ///< file order, then definition order: deterministic
  std::map<std::string, std::vector<std::size_t>> by_name;  ///< unqualified name -> nodes
  std::vector<Edge> edges;
  std::vector<std::vector<std::size_t>> out_edges;  ///< node -> indices into edges
  std::vector<Unresolved> unresolved;
  std::size_t distinct_unresolved = 0;  ///< distinct unresolved callee names

  [[nodiscard]] std::size_t node_of(const FunctionDef* def) const;
};

/// Links call sites against same-named definitions (scope-filtered for
/// unqualified calls, full fan-out otherwise — see the file comment).
/// `files` must stay alive (and unmoved) for the graph's lifetime.
[[nodiscard]] CallGraph build_call_graph(const std::vector<FileIndex>& files);

/// JSON dump for --dump-callgraph: functions (qname/file/line/flags), edges
/// as [caller, callee] index pairs, unresolved externals aggregated by name
/// with site counts, and a summary block. Deterministic byte-for-byte.
[[nodiscard]] std::string call_graph_to_json(const CallGraph& graph);

}  // namespace ppatc::lint
