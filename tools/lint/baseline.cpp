// Baseline workflow: pre-existing findings parked in a committed file so a
// new rule can land strict without a flag day. Format, one entry per line:
//     <rule> <file>:<line> -- <rationale>
// The rationale is mandatory — a parked finding without a written reason is
// indistinguishable from a forgotten one. Matching is exact on
// (rule, file, line); entries that stop matching are reported as stale so
// the baseline can only shrink.
#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "lint_core.hpp"

namespace ppatc::lint {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("baseline:" + std::to_string(line) + ": " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

}  // namespace

Baseline parse_baseline(const std::string& text) {
  Baseline baseline;
  std::istringstream is{text};
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t sep = line.find(" -- ");
    if (sep == std::string::npos) {
      fail(lineno, "expected `<rule> <file>:<line> -- <rationale>`");
    }
    const std::string rationale = trim(line.substr(sep + 4));
    if (rationale.empty()) {
      fail(lineno, "baseline entries must carry a rationale after ` -- `");
    }
    std::istringstream head{line.substr(0, sep)};
    BaselineEntry entry;
    std::string site;
    if (!(head >> entry.rule >> site)) {
      fail(lineno, "expected `<rule> <file>:<line>` before ` -- `");
    }
    std::string extra;
    if (head >> extra) fail(lineno, "unexpected token '" + extra + "' before ` -- `");
    const std::size_t colon = site.rfind(':');
    if (colon == std::string::npos || colon + 1 >= site.size()) {
      fail(lineno, "site '" + site + "' must be <file>:<line>");
    }
    entry.file = site.substr(0, colon);
    try {
      entry.line = std::stoi(site.substr(colon + 1));
    } catch (const std::exception&) {
      fail(lineno, "bad line number in '" + site + "'");
    }
    if (entry.line <= 0) fail(lineno, "line numbers are 1-based in '" + site + "'");
    const bool known = std::any_of(all_rules().begin(), all_rules().end(),
                                   [&](const std::string& r) { return r == entry.rule; });
    if (!known) fail(lineno, "unknown rule '" + entry.rule + "'");
    entry.rationale = rationale;
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

std::vector<BaselineEntry> apply_baseline(Report& report, const Baseline& baseline) {
  std::vector<BaselineEntry> stale;
  for (const BaselineEntry& entry : baseline.entries) {
    bool matched = false;
    for (Finding& f : report.findings) {
      if (f.rule == entry.rule && f.file == entry.file && f.line == entry.line &&
          !f.suppressed) {
        f.baselined = true;
        matched = true;
      }
    }
    if (!matched) stale.push_back(entry);
  }
  return stale;
}

std::string format_baseline(const std::vector<BaselineEntry>& entries) {
  std::ostringstream os;
  os << "# ppatc-lint baseline: parked findings, one `<rule> <file>:<line> -- <rationale>`\n"
     << "# per line. Entries must carry a rationale; stale entries fail the lint so this\n"
     << "# file can only shrink.\n";
  for (const BaselineEntry& entry : entries) {
    os << entry.rule << ' ' << entry.file << ':' << entry.line << " -- "
       << (entry.rationale.empty() ? "TODO: add rationale" : entry.rationale) << '\n';
  }
  return os.str();
}

}  // namespace ppatc::lint
