// Driver + the line-oriented rule generation (unit-typed-api, determinism,
// unordered-iter, env-allowlist, pragma-once). The scope-aware rules live in
// rules_scope.cpp / layering.cpp; the lexer they all share is lexer.cpp.
#include "lint_core.hpp"

#include <algorithm>
#include <fstream>
#include <regex>
#include <sstream>
#include <tuple>

#include "call_graph.hpp"
#include "lexer.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "rules_internal.hpp"
#include "symbols.hpp"

namespace ppatc::lint {

namespace {

// Suppression comments (allowed_rules_per_line / is_rule_allowed) are shared
// with the interprocedural rules and live in lexer.cpp.

// ---- rule: unit-typed-api ---------------------------------------------------

struct SuffixUnit {
  const char* suffix;
  const char* unit_type;
};

// Dimension-implying name suffixes that have a ppatc::units strong type.
constexpr SuffixUnit kSuffixUnits[] = {
    {"_j", "ppatc::Energy"},         {"_kwh", "ppatc::Energy"},
    {"_gco2", "ppatc::Carbon"},      {"_gco2e", "ppatc::Carbon"},
    {"_g", "ppatc::Mass (grams) or ppatc::Carbon (gCO2e)"},
    {"_s", "ppatc::Duration"},       {"_months", "ppatc::Duration"},
    {"_hours", "ppatc::Duration"},   {"_w", "ppatc::Power"},
    {"_mm2", "ppatc::Area"},         {"_cm2", "ppatc::Area"},
    {"_um2", "ppatc::Area"},         {"_um", "ppatc::Length"},
    {"_nm", "ppatc::Length"},        {"_mm", "ppatc::Length"},
    {"_k", "ppatc::Temperature"},
};

const char* dimension_suffix_unit(const std::string& name) {
  // Per-something ratios (cm_per_s, ff_per_um, ohm_um, ...) are compound
  // dimensions with no single units type; skip them.
  if (name.find("_per_") != std::string::npos || name.find("_ohm_") != std::string::npos) {
    return nullptr;
  }
  const char* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& su : kSuffixUnits) {
    const std::string suffix{su.suffix};
    if (name.size() > suffix.size() && name.ends_with(suffix) && suffix.size() > best_len) {
      best = su.unit_type;
      best_len = suffix.size();
    }
  }
  return best;
}

void rule_unit_typed_api(const std::string& rel, const FileText& text,
                         std::vector<Finding>& out) {
  // The delimiter is a lookahead so it stays unconsumed: in
  // `f(double a_mm2, double b_mm2)` the '(' and ',' must still be available
  // as the leading character of the next match.
  static const std::regex re{
      R"((?:^|[^A-Za-z0-9_>])(?:double|float)\s+([A-Za-z_][A-Za-z0-9_]*)(?=\s*([,)=;{(])))"};
  for (std::size_t i = 0; i < text.code.size(); ++i) {
    const std::string& line = text.code[i];
    for (auto it = std::sregex_iterator{line.begin(), line.end(), re};
         it != std::sregex_iterator{}; ++it) {
      const std::string name = (*it)[1].str();
      const std::string delim = (*it)[2].str();
      if (delim == "(") continue;  // function name (in_* accessors are shims by design)
      const char* unit = dimension_suffix_unit(name);
      if (unit == nullptr) continue;
      out.push_back({"unit-typed-api", rel, static_cast<int>(i + 1),
                     "'" + name + "' is a raw double carrying a dimension; use " + unit +
                         " (ppatc/common/units.hpp) so the unit is part of the type",
                     false, false});
    }
  }
}

// ---- rule: determinism ------------------------------------------------------

void rule_determinism(const std::string& rel, const FileText& text, std::vector<Finding>& out) {
  struct BannedToken {
    const char* needle;
    bool call_only;  ///< require '(' after the token
    const char* why;
  };
  static constexpr BannedToken kBanned[] = {
      {"rand", true, "rand() is nondeterministic across runs; use a seeded std::mt19937_64"},
      {"srand", true, "srand() hides the seed in global state; thread an explicit seed instead"},
      {"random_device", false,
       "std::random_device breaks reproducibility; derive streams from an explicit seed"},
      {"gettimeofday", true, "wall-clock reads make results time-dependent"},
      {"localtime", true, "wall-clock reads make results time-dependent"},
      {"gmtime", true, "wall-clock reads make results time-dependent"},
      {"system_clock", false,
       "std::chrono::system_clock is wall-clock; use steady_clock (obs::monotonic_ns) for spans"},
  };
  static constexpr const char* kTimeSeeds[] = {"time(NULL)", "time(nullptr)", "time(0)",
                                               "std::time("};
  for (std::size_t i = 0; i < text.code.size(); ++i) {
    const std::string& line = text.code[i];
    for (const auto& b : kBanned) {
      const std::size_t n = std::string::traits_type::length(b.needle);
      for (std::size_t pos = line.find(b.needle); pos != std::string::npos;
           pos = line.find(b.needle, pos + 1)) {
        // Skip identifier continuations (cross_time, my_rand, ...); qualified
        // uses (std::rand) still match because ':' is not an identifier char.
        if (pos > 0 && is_ident_char(line[pos - 1])) continue;
        if (pos + n < line.size() && is_ident_char(line[pos + n])) continue;
        if (b.call_only) {
          std::size_t j = pos + n;
          while (j < line.size() && line[j] == ' ') ++j;
          if (j >= line.size() || line[j] != '(') continue;
        }
        out.push_back({"determinism", rel, static_cast<int>(i + 1),
                       std::string{b.needle} + ": " + b.why, false, false});
      }
    }
    for (const char* seed : kTimeSeeds) {
      std::string compact;
      compact.reserve(line.size());
      for (char c : line) {
        if (c != ' ' && c != '\t') compact.push_back(c);
      }
      if (compact.find(seed) != std::string::npos) {
        out.push_back({"determinism", rel, static_cast<int>(i + 1),
                       std::string{seed} + ": wall-clock seeding is nondeterministic; thread an "
                                           "explicit seed parameter",
                       false, false});
      }
    }
  }
}

// ---- rule: unordered-iter ---------------------------------------------------

struct UnorderedDecl {
  std::string name;
  int decl_line = 0;        ///< 1-based; 0 when only usages were seen
  bool single_element = false;  ///< initializer held exactly one element
};

// Identifiers declared (anywhere in this file) with an unordered container
// type, plus whether the declaration's brace initializer pins the container
// to a single element. Textual and file-local by design: cheap,
// deterministic, and exact for the project's code style.
std::vector<UnorderedDecl> unordered_identifiers(const FileText& text) {
  std::vector<UnorderedDecl> decls;
  for (std::size_t li = 0; li < text.code.size(); ++li) {
    const std::string& line = text.code[li];
    for (std::size_t pos = line.find("unordered_"); pos != std::string::npos;
         pos = line.find("unordered_", pos + 1)) {
      const std::size_t open = line.find('<', pos);
      if (open == std::string::npos) continue;
      int depth = 0;
      std::size_t close = open;
      for (; close < line.size(); ++close) {
        if (line[close] == '<') ++depth;
        if (line[close] == '>' && --depth == 0) break;
      }
      if (close >= line.size()) continue;
      std::size_t j = close + 1;
      while (j < line.size() && (line[j] == ' ' || line[j] == '&')) ++j;
      std::size_t k = j;
      while (k < line.size() && is_ident_char(line[k])) ++k;
      if (k == j) continue;
      UnorderedDecl d;
      d.name = line.substr(j, k - j);
      d.decl_line = static_cast<int>(li + 1);
      // Single-element escape: an initializer of the form {elem} (no
      // top-level comma inside the outer braces) means iteration order
      // cannot matter — there is exactly one element to visit.
      std::size_t b = k;
      while (b < line.size() && line[b] == ' ') ++b;
      if (b < line.size() && line[b] == '{') {
        int bdepth = 0;
        bool top_comma = false;
        bool non_empty = false;
        for (std::size_t c = b; c < line.size(); ++c) {
          if (line[c] == '{' || line[c] == '(' || line[c] == '[') ++bdepth;
          if (line[c] == '}' || line[c] == ')' || line[c] == ']') {
            if (--bdepth == 0) break;
          }
          if (bdepth == 1 && line[c] == ',') top_comma = true;
          if (bdepth >= 1 && c > b && line[c] != ' ' && line[c] != '}') non_empty = true;
        }
        d.single_element = non_empty && !top_comma;
      }
      decls.push_back(std::move(d));
    }
  }
  std::sort(decls.begin(), decls.end(),
            [](const UnorderedDecl& a, const UnorderedDecl& b) { return a.name < b.name; });
  decls.erase(std::unique(decls.begin(), decls.end(),
                          [](const UnorderedDecl& a, const UnorderedDecl& b) {
                            return a.name == b.name;
                          }),
              decls.end());
  return decls;
}

// True when the identifier is mutated after declaration (insert/emplace/
// operator[]), which voids the single-element escape.
bool mutated_later(const FileText& text, const std::string& name, int decl_line) {
  const std::string needles[] = {name + ".insert", name + ".emplace", name + ".try_emplace",
                                 name + "["};
  for (std::size_t li = static_cast<std::size_t>(decl_line); li < text.code.size(); ++li) {
    for (const std::string& n : needles) {
      std::size_t pos = text.code[li].find(n);
      // Require a non-identifier char before, so `my_set.insert` does not
      // count as a mutation of `set`.
      while (pos != std::string::npos) {
        if (pos == 0 || !is_ident_char(text.code[li][pos - 1])) return true;
        pos = text.code[li].find(n, pos + 1);
      }
    }
  }
  return false;
}

void rule_unordered_iteration(const std::string& rel, const FileText& text,
                              std::vector<Finding>& out) {
  const std::vector<UnorderedDecl> unordered = unordered_identifiers(text);
  if (unordered.empty()) return;
  static const std::regex re{R"(for\s*\([^;)]*:\s*([A-Za-z_][A-Za-z0-9_.>-]*)\s*\))"};
  for (std::size_t i = 0; i < text.code.size(); ++i) {
    std::smatch m;
    const std::string& line = text.code[i];
    if (!std::regex_search(line, m, re)) continue;
    std::string target = m[1].str();
    // Take the last member-access component: obj.map_ / obj->map_ -> map_.
    const std::size_t dot = target.find_last_of(".>");
    if (dot != std::string::npos) target = target.substr(dot + 1);
    const auto it = std::lower_bound(
        unordered.begin(), unordered.end(), target,
        [](const UnorderedDecl& d, const std::string& t) { return d.name < t; });
    if (it == unordered.end() || it->name != target) continue;
    // Escape 1: a single-element container has exactly one visitation order.
    if (it->single_element && !mutated_later(text, it->name, it->decl_line)) continue;
    // Escape 2: a fold that is sorted immediately after the loop is order-
    // insensitive — the sort canonicalizes whatever order the loop produced.
    bool sorted_after = false;
    for (std::size_t j = i + 1; j < text.code.size() && j <= i + 6; ++j) {
      const std::size_t pos = text.code[j].find("sort(");
      if (pos != std::string::npos &&
          (pos == 0 || !is_ident_char(text.code[j][pos - 1]))) {  // sort( / std::sort(
        sorted_after = true;
        break;
      }
    }
    if (sorted_after) continue;
    out.push_back({"unordered-iter", rel, static_cast<int>(i + 1),
                   "range-for over unordered container '" + target +
                       "': iteration order is implementation-defined, so any fold over it is a "
                       "nondeterminism leak; iterate a sorted view or an ordered container",
                   false, false});
  }
}

// ---- rule: env-allowlist ----------------------------------------------------

void rule_env_allowlist(const std::string& rel, const FileText& text, const Config& config,
                        std::vector<Finding>& out) {
  const bool blessed =
      std::any_of(config.env_allowlist.begin(), config.env_allowlist.end(),
                  [&](const std::string& entry) { return rel.ends_with(entry); });
  if (blessed) return;
  for (std::size_t i = 0; i < text.code.size(); ++i) {
    const std::string& line = text.code[i];
    for (std::size_t pos = line.find("getenv"); pos != std::string::npos;
         pos = line.find("getenv", pos + 1)) {
      if (pos > 0 && is_ident_char(line[pos - 1])) continue;
      std::size_t j = pos + 6;
      while (j < line.size() && line[j] == ' ') ++j;
      if (j >= line.size() || line[j] != '(') continue;
      out.push_back({"env-allowlist", rel, static_cast<int>(i + 1),
                     "getenv outside the blessed runtime/obs configuration sites; model code must "
                     "not read the environment",
                     false, false});
    }
  }
}

// ---- rule: obs-name-literal -------------------------------------------------
// The flight rings store the name *pointer* and the metrics registry interns
// names for the process lifetime: a name built at runtime either dangles (ring
// outlives the string) or explodes the registry cardinality. Metric, span, and
// flight-event names at obs call sites must therefore be string literals. The
// obs module itself is exempt — its internals forward caller-validated name
// pointers by design.

// First non-space character at or after `col`, looking onto the next code
// line when the rest of the current line is blank (wrapped call sites put the
// name literal on its own line).
char first_arg_char(const FileText& text, std::size_t line_index, std::size_t col) {
  for (std::size_t li = line_index; li < text.code.size() && li < line_index + 2; ++li) {
    const std::string& line = text.code[li];
    for (std::size_t j = li == line_index ? col : 0; j < line.size(); ++j) {
      if (line[j] != ' ' && line[j] != '\t') return line[j];
    }
  }
  return '\0';
}

void rule_obs_name_literal(const std::string& rel, const FileText& text,
                           std::vector<Finding>& out) {
  if (rel.starts_with("obs/")) return;
  static constexpr const char* kSites[] = {"obs::counter",      "obs::gauge",
                                           "obs::histogram",    "obs::flight_mark",
                                           "obs::flight_count", "obs::Span"};
  for (std::size_t i = 0; i < text.code.size(); ++i) {
    const std::string& line = text.code[i];
    for (const char* site : kSites) {
      const std::string name{site};
      for (std::size_t pos = line.find(name); pos != std::string::npos;
           pos = line.find(name, pos + name.size())) {
        if (pos > 0 && (is_ident_char(line[pos - 1]) || line[pos - 1] == ':')) continue;
        std::size_t j = pos + name.size();
        if (j < line.size() && is_ident_char(line[j])) continue;  // longer identifier
        // Locate the argument-list opener. Calls use '('; Span is a type, so
        // allow an optional variable name before '{' or '('.
        const bool is_span = name == "obs::Span";
        while (j < line.size() && line[j] == ' ') ++j;
        if (is_span) {
          while (j < line.size() && is_ident_char(line[j])) ++j;
          while (j < line.size() && line[j] == ' ') ++j;
        }
        if (j >= line.size() || (line[j] != '(' && (!is_span || line[j] != '{'))) continue;
        if (first_arg_char(text, i, j + 1) == '"') continue;
        out.push_back({"obs-name-literal", rel, static_cast<int>(i + 1),
                       "name passed to " + name +
                           " is not a string literal; obs stores the name pointer (or interns it "
                           "for the process lifetime), so names must be literals at the call site",
                       false, false});
      }
    }
  }
}

// ---- rule: pragma-once ------------------------------------------------------

void rule_pragma_once(const std::string& rel, const FileText& text, std::vector<Finding>& out) {
  for (const std::string& line : text.code) {
    std::string trimmed;
    for (char c : line) {
      if (c != ' ' && c != '\t') trimmed.push_back(c);
    }
    if (trimmed == "#pragmaonce") return;
  }
  out.push_back({"pragma-once", rel, 1,
                 "public header is missing #pragma once (include-guard policy)", false, false});
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> rules{
      "determinism",       "determinism-taint", "env-allowlist",
      "fp-reduction-order", "interproc-units-escape", "layering",
      "lifetime",          "noexcept-escape",   "obs-name-literal",
      "parallel-safety",   "pragma-once",       "realtime-purity",
      "signal-safety",     "unit-typed-api",    "unordered-iter",
      "units-escape",
  };
  return rules;
}

// ---- driver -----------------------------------------------------------------

void lint_text(const std::string& rel, const std::string& contents, const Config& config,
               std::vector<Finding>& out) {
  const FileText text = split_and_strip(contents);
  const auto allowed = allowed_rules_per_line(text.raw);
  const bool is_header = rel.ends_with(".hpp") || rel.ends_with(".h");
  const bool is_public_header = is_header && rel.find("include/") != std::string::npos;

  const auto enabled = [&](const char* rule) {
    return config.rules.empty() ||
           std::find(config.rules.begin(), config.rules.end(), rule) != config.rules.end();
  };

  std::vector<Finding> found;
  if (is_public_header) {
    if (enabled("unit-typed-api")) rule_unit_typed_api(rel, text, found);
    if (enabled("pragma-once")) rule_pragma_once(rel, text, found);
  }
  if (enabled("determinism")) rule_determinism(rel, text, found);
  if (enabled("unordered-iter")) rule_unordered_iteration(rel, text, found);
  if (enabled("env-allowlist")) rule_env_allowlist(rel, text, config, found);
  if (enabled("obs-name-literal")) rule_obs_name_literal(rel, text, found);

  if (enabled("layering") && !config.layering.empty()) {
    const std::vector<Include> includes = extract_includes(text.raw);
    detail::rule_layering(rel, includes, config.layering, found);
  }
  if (enabled("parallel-safety") || enabled("units-escape")) {
    const std::vector<Token> tokens = tokenize(text);
    if (enabled("parallel-safety")) detail::rule_parallel_safety(rel, tokens, found);
    if (enabled("units-escape")) detail::rule_units_escape(rel, tokens, found);
  }
  if (enabled("lifetime")) detail::rule_lifetime(rel, text, found);

  for (Finding& f : found) {
    f.suppressed =
        f.line > 0 && is_rule_allowed(allowed, static_cast<std::size_t>(f.line - 1), f.rule);
    out.push_back(std::move(f));
  }
}

namespace {

// Does the configured rule filter include any rule that needs the symbol
// indexes + call graph? Skipping the second phase keeps `--rules layering`
// runs as cheap as before PR 8.
bool interproc_enabled(const Config& config) {
  if (config.rules.empty()) return true;
  return std::any_of(config.rules.begin(), config.rules.end(), [](const std::string& r) {
    return r == "signal-safety" || r == "noexcept-escape" || r == "realtime-purity" ||
           r == "determinism-taint" || r == "fp-reduction-order" ||
           r == "interproc-units-escape";
  });
}

}  // namespace

Report run_lint(const std::filesystem::path& root, const Config& config) {
  return run_lint(root, config, nullptr, nullptr);
}

Report run_lint(const std::filesystem::path& root, const Config& config,
                std::string* callgraph_json, InterprocStats* stats) {
  namespace fs = std::filesystem;
  fs::path scan_root = root;
  if (fs::is_directory(root / "src")) scan_root = root / "src";

  Config effective = config;
  if (effective.layering.empty()) {
    const fs::path layering_path = root / "tools" / "lint" / "layering.toml";
    if (fs::is_regular_file(layering_path)) {
      std::ifstream in{layering_path, std::ios::binary};
      std::ostringstream buf;
      buf << in.rdbuf();
      effective.layering = parse_layering(buf.str());
    }
  }
  // The getenv allowlist is declarative: when the caller did not pre-populate
  // it, load tools/lint/env_allowlist.toml. Toml-loaded entries are also
  // checked for staleness against the scanned tree below, so the file can
  // only shrink (an explicit Config allowlist is a test harness and is not
  // staleness-checked).
  EnvAllowlist env_toml;
  if (effective.env_allowlist.empty()) {
    const fs::path env_path = root / "tools" / "lint" / "env_allowlist.toml";
    if (fs::is_regular_file(env_path)) {
      std::ifstream in{env_path, std::ios::binary};
      std::ostringstream buf;
      buf << in.rdbuf();
      env_toml = parse_env_allowlist(buf.str());
      for (const EnvAllowlistEntry& e : env_toml.entries) {
        effective.env_allowlist.push_back(e.file);
      }
    }
  }

  std::vector<fs::path> files;
  const auto skip_dir = [](const std::string& name) {
    return name.starts_with("build") || name.starts_with(".") || name == "header_tus";
  };
  for (auto it = fs::recursive_directory_iterator{scan_root};
       it != fs::recursive_directory_iterator{}; ++it) {
    if (it->is_directory()) {
      if (skip_dir(it->path().filename().string())) it.disable_recursion_pending();
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());

  // File-parallel on the project's own deterministic runtime (dogfooding):
  // each file lints — and, when an interprocedural rule is enabled, indexes —
  // into its own pre-sized slot, and slots are merged in sorted file order,
  // so the report is byte-stable at any thread count.
  const bool want_interproc = callgraph_json != nullptr || interproc_enabled(effective);
  std::vector<std::vector<Finding>> per_file(files.size());
  std::vector<FileIndex> indexes(want_interproc ? files.size() : 0);
  runtime::parallel_for(
      files.size(),
      [&](std::size_t i) {
        std::ifstream in{files[i], std::ios::binary};
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string rel = fs::relative(files[i], scan_root).generic_string();
        const std::string contents = buf.str();
        lint_text(rel, contents, effective, per_file[i]);
        if (want_interproc) indexes[i] = index_file(rel, contents);
      },
      /*grain=*/4);

  Report report;
  report.files_scanned = files.size();
  for (std::vector<Finding>& findings : per_file) {
    for (Finding& f : findings) report.findings.push_back(std::move(f));
  }

  // Stale allowlist entries: a toml entry matching no scanned file blesses
  // nothing and must be removed (the declarative list can only shrink). Only
  // checked for the env-allowlist rule and only for toml-loaded entries.
  const bool env_rule_enabled =
      effective.rules.empty() ||
      std::find(effective.rules.begin(), effective.rules.end(), "env-allowlist") !=
          effective.rules.end();
  if (env_rule_enabled) {
    std::vector<std::string> rels;
    rels.reserve(files.size());
    for (const fs::path& p : files) rels.push_back(fs::relative(p, scan_root).generic_string());
    for (const EnvAllowlistEntry& e : env_toml.entries) {
      const bool matches = std::any_of(rels.begin(), rels.end(), [&](const std::string& rel) {
        return rel.ends_with(e.file);
      });
      if (!matches) {
        report.findings.push_back(
            {"env-allowlist", "tools/lint/env_allowlist.toml", e.line,
             "stale allowlist entry '" + e.file +
                 "' matches no scanned file; remove it so the blessed-getenv list only shrinks",
             false, false});
      }
    }
  }

  InterprocStats st;
  if (want_interproc) {
    const CallGraph graph = build_call_graph(indexes);
    st.functions_indexed = graph.nodes.size();
    st.call_edges = graph.edges.size();
    st.unresolved_externals = graph.distinct_unresolved;

    std::vector<Finding> interproc;
    detail::run_interproc_rules(indexes, graph, effective, interproc);
    detail::run_dataflow_rules(indexes, graph, effective, interproc, &st.dataflow_summaries,
                               &st.fixpoint_iterations);
    // BFS emission order depends on cone shape, not file order; sort so the
    // interprocedural tail of the report is deterministic too.
    std::sort(interproc.begin(), interproc.end(), [](const Finding& a, const Finding& b) {
      return std::tie(a.file, a.line, a.col, a.rule, a.message) <
             std::tie(b.file, b.line, b.col, b.rule, b.message);
    });
    for (Finding& f : interproc) report.findings.push_back(std::move(f));

    if (callgraph_json != nullptr) *callgraph_json = call_graph_to_json(graph);
  }

  // Analyzer self-metrics through the obs registry, so a PPATC_METRICS run
  // leaves a sidecar describing the analysis itself. Gauges (idempotent set)
  // rather than counters: tests call run_lint repeatedly in one process. The
  // linter never scans tools/, so the dynamically built per-rule names cannot
  // trip obs-name-literal; cardinality is bounded by all_rules().
  obs::gauge("lint.files_scanned").set(static_cast<double>(files.size()));
  obs::gauge("lint.functions_indexed").set(static_cast<double>(st.functions_indexed));
  obs::gauge("lint.call_edges").set(static_cast<double>(st.call_edges));
  obs::gauge("lint.unresolved_externals").set(static_cast<double>(st.unresolved_externals));
  obs::gauge("lint.dataflow_summaries").set(static_cast<double>(st.dataflow_summaries));
  obs::gauge("lint.fixpoint_iterations").set(static_cast<double>(st.fixpoint_iterations));
  for (const std::string& rule : all_rules()) {
    std::size_t n = 0;
    for (const Finding& f : report.findings) {
      if (!f.suppressed && !f.baselined && f.rule == rule) ++n;
    }
    obs::gauge("lint.findings." + rule).set(static_cast<double>(n));
  }

  if (stats != nullptr) *stats = st;
  return report;
}

std::size_t Report::violation_count() const {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return !f.suppressed && !f.baselined; }));
}

std::size_t Report::suppression_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) { return f.suppressed; }));
}

std::size_t Report::baselined_count() const {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.baselined && !f.suppressed; }));
}

std::map<std::string, std::size_t> Report::count_by_rule(bool suppressed) const {
  std::map<std::string, std::size_t> counts;
  for (const Finding& f : findings) {
    if (f.baselined && !f.suppressed) continue;
    if (f.suppressed == suppressed) ++counts[f.rule];
  }
  return counts;
}

std::string format_report(const Report& report) {
  std::ostringstream os;
  os << "ppatc-lint: scanned " << report.files_scanned << " files, "
     << report.violation_count() << " violations, " << report.suppression_count()
     << " suppressed, " << report.baselined_count() << " baselined\n";
  const auto violations = report.count_by_rule(false);
  const auto suppressed = report.count_by_rule(true);
  for (const auto& [rule, count] : violations) {
    os << "  " << rule << ": " << count << " violations\n";
  }
  for (const auto& [rule, count] : suppressed) {
    os << "  " << rule << ": " << count << " suppressed\n";
  }
  for (const Finding& f : report.findings) {
    if (f.suppressed || f.baselined) continue;
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  for (const Finding& f : report.findings) {
    if (!f.suppressed) continue;
    os << f.file << ":" << f.line << ": [" << f.rule << "] suppressed via allow(" << f.rule
       << ")\n";
  }
  for (const Finding& f : report.findings) {
    if (!f.baselined || f.suppressed) continue;
    os << f.file << ":" << f.line << ": [" << f.rule << "] baselined\n";
  }
  return os.str();
}

}  // namespace ppatc::lint
