// The three dataflow rules: determinism-taint, fp-reduction-order,
// interproc-units-escape. The engine (dataflow.cpp) detects the shapes and
// hands over DataflowEvents; this layer owns rule gating, messages with full
// source -> sink paths, related-location chains, allow() suppression (per
// site and on the definition line) and deduplication.
#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include "dataflow.hpp"
#include "rules_internal.hpp"

namespace ppatc::lint::detail {

namespace {

constexpr const char* kTaintRule = "determinism-taint";
constexpr const char* kFpRule = "fp-reduction-order";
constexpr const char* kUnitsRule = "interproc-units-escape";

bool rule_enabled(const Config& config, const std::string& rule) {
  return config.rules.empty() ||
         std::find(config.rules.begin(), config.rules.end(), rule) != config.rules.end();
}

std::string site(const std::string& file, int line) {
  return file + ":" + std::to_string(line);
}

std::string tag_str(const UnitDim* units) {
  if (units == nullptr) return "?";
  std::string out = "(";
  out += units->dim;
  out += ", in_";
  out += units->unit;
  out += ")";
  return out;
}

/// source -> ... -> sink chain for a taint event: the taint's provenance
/// (origin-first), the reporting function, the callees toward the sink, the
/// sink itself.
std::string taint_path(const DataflowEvent& ev) {
  std::string path = ev.taint.desc + " (" + site(ev.taint.file, ev.taint.line) + ")";
  for (auto it = ev.taint.via.rbegin(); it != ev.taint.via.rend(); ++it) {
    path += " -> " + *it;
  }
  path += " -> " + ev.fn->qname;
  for (const std::string& v : ev.via) path += " -> " + v;
  path += " -> " + ev.sink;
  return path;
}

/// Provenance suffix for a cross-function units tag.
std::string tag_provenance(const DataflowEvent& ev) {
  std::string prov = ev.have_desc + " at " + site(ev.have_file, ev.have_line);
  for (const std::string& v : ev.have_via) prov += ", through " + v;
  return prov;
}

Finding make_finding(const std::string& rule, const DataflowEvent& ev, std::string message) {
  Finding f;
  f.rule = rule;
  f.file = ev.file->rel;
  f.line = ev.line;
  f.message = std::move(message);
  f.suppressed = ev.file->line_allows(ev.line, rule) ||
                 (ev.fn != nullptr && ev.file->line_allows(ev.fn->line, rule));
  f.col = ev.col;
  f.end_col = ev.col > 0 ? ev.col + static_cast<int>(ev.token_len) : 0;
  return f;
}

void add_related(Finding& f, const std::string& file, int line, std::string note) {
  if (line <= 0) return;
  f.related.push_back({file, line, std::move(note)});
}

Finding taint_finding(const DataflowEvent& ev) {
  const std::string what =
      ev.target.empty() ? std::string{"a value"} : "'" + ev.target + "'";
  Finding f = make_finding(
      kTaintRule, ev,
      what + " derived from " + ev.taint.desc + " reaches " + ev.sink +
          "; recorded/cached results then differ run-to-run. Path: " + taint_path(ev));
  add_related(f, ev.taint.file, ev.taint.line, "source: " + ev.taint.desc);
  // Intermediate hops, source-first, so the SARIF chain reads as the path.
  for (auto it = ev.taint.via.rbegin(); it != ev.taint.via.rend(); ++it) {
    add_related(f, ev.file->rel, ev.line, "via " + *it);
  }
  for (const std::string& v : ev.via) add_related(f, ev.file->rel, ev.line, "via " + v);
  add_related(f, ev.helper_line > 0 ? ev.helper_file : ev.file->rel,
              ev.helper_line > 0 ? ev.helper_line : ev.line, "sink: " + ev.sink);
  return f;
}

Finding fp_shared_finding(const DataflowEvent& ev) {
  Finding f = make_finding(
      kFpRule, ev,
      "floating-point accumulator '" + ev.target +
          "' is compound-assigned inside a parallel region; the merge order is then the "
          "scheduler's, not the chunk-indexed discipline's, and the result drifts across "
          "thread counts. Accumulate into a chunk-local and write partials[chunk.index] "
          "(or out[i]) instead");
  if (ev.fn != nullptr) {
    add_related(f, ev.file->rel, ev.fn->line, "parallel region entered here");
  }
  return f;
}

Finding fp_helper_finding(const DataflowEvent& ev) {
  std::string path = ev.fn->qname;
  for (const std::string& v : ev.via) path += " -> " + v;
  Finding f = make_finding(
      kFpRule, ev,
      "'" + ev.target + "' is a shared floating-point accumulator mutated through " +
          ev.helper + " (" + site(ev.helper_file, ev.helper_line) +
          ") inside a parallel region; the interprocedural merge order is the scheduler's. "
          "Path: " + path + " -> " + ev.target + " +=");
  add_related(f, ev.helper_file, ev.helper_line,
              "accumulation site inside " + ev.helper);
  if (ev.fn != nullptr) {
    add_related(f, ev.file->rel, ev.fn->line, "parallel region entered here");
  }
  return f;
}

Finding units_mix_finding(const DataflowEvent& ev) {
  Finding f = make_finding(
      kUnitsRule, ev,
      "'" + ev.target + "' carries " + tag_str(ev.have) + " from " + tag_provenance(ev) +
          " but is combined with '" + ev.other + "' carrying " + tag_str(ev.want) +
          " (" + ev.want_desc + "); the tags crossed a function boundary, so the local "
          "units-escape rule cannot see this mix");
  add_related(f, ev.have_file, ev.have_line, "tag born here: " + ev.have_desc);
  return f;
}

Finding units_factory_finding(const DataflowEvent& ev) {
  const std::string what =
      ev.target.empty() ? std::string{"a value"} : "'" + ev.target + "'";
  Finding f = make_finding(
      kUnitsRule, ev,
      what + " carries " + tag_str(ev.have) + " from " + tag_provenance(ev) +
          " but is re-wrapped by " + ev.want_desc + " which constructs " + tag_str(ev.want) +
          "; round-trip through matching accessor/factory pairs");
  add_related(f, ev.have_file, ev.have_line, "tag born here: " + ev.have_desc);
  return f;
}

Finding units_param_finding(const DataflowEvent& ev) {
  const std::string what =
      ev.target.empty() ? std::string{"the argument"} : "'" + ev.target + "'";
  Finding f = make_finding(
      kUnitsRule, ev,
      what + " carries " + tag_str(ev.have) + " from " + tag_provenance(ev) + " but " +
          ev.helper + " expects this parameter to carry " + tag_str(ev.want) +
          " (established by " + ev.want_desc + " at " + site(ev.helper_file, ev.helper_line) +
          ")");
  add_related(f, ev.have_file, ev.have_line, "argument tag born here: " + ev.have_desc);
  add_related(f, ev.helper_file, ev.helper_line,
              "callee expectation established here: " + ev.want_desc);
  return f;
}

}  // namespace

void run_dataflow_rules(const std::vector<FileIndex>& files, const CallGraph& graph,
                        const Config& config, std::vector<Finding>& out,
                        std::size_t* dataflow_summaries, std::size_t* fixpoint_iterations) {
  const bool taint = rule_enabled(config, kTaintRule);
  const bool fp = rule_enabled(config, kFpRule);
  const bool units = rule_enabled(config, kUnitsRule);
  if (!taint && !fp && !units) {
    if (dataflow_summaries != nullptr) *dataflow_summaries = 0;
    if (fixpoint_iterations != nullptr) *fixpoint_iterations = 0;
    return;
  }
  const DataflowResult result = compute_dataflow(files, graph);
  if (dataflow_summaries != nullptr) *dataflow_summaries = result.summaries_computed;
  if (fixpoint_iterations != nullptr) *fixpoint_iterations = result.fixpoint_iterations;

  std::set<std::tuple<std::string, std::string, int, int>> seen;  // rule/file/line/col
  for (const DataflowEvent& ev : result.events) {
    Finding f;
    switch (ev.kind) {
      case DataflowEvent::Kind::kTaintSink:
        if (!taint) continue;
        f = taint_finding(ev);
        break;
      case DataflowEvent::Kind::kFpSharedAccum:
        if (!fp) continue;
        f = fp_shared_finding(ev);
        break;
      case DataflowEvent::Kind::kFpHelperAccum:
        if (!fp) continue;
        f = fp_helper_finding(ev);
        break;
      case DataflowEvent::Kind::kUnitsMix:
        if (!units) continue;
        f = units_mix_finding(ev);
        break;
      case DataflowEvent::Kind::kUnitsFactory:
        if (!units) continue;
        f = units_factory_finding(ev);
        break;
      case DataflowEvent::Kind::kUnitsParam:
        if (!units) continue;
        f = units_param_finding(ev);
        break;
    }
    if (!seen.emplace(f.rule, f.file, f.line, f.col).second) continue;  // keep first
    out.push_back(std::move(f));
  }
}

}  // namespace ppatc::lint::detail
