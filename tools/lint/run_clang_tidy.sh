#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every src/ TU in
# the given build directory's compile_commands.json.
#
#   usage: run_clang_tidy.sh <build-dir>
#
# Exit codes: 0 clean, 1 findings, 2 usage, 77 clang-tidy unavailable (ctest
# maps 77 to SKIPPED via SKIP_RETURN_CODE).
set -u

BUILD_DIR=${1:?usage: run_clang_tidy.sh <build-dir>}
DB="$BUILD_DIR/compile_commands.json"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping" >&2
  exit 77
fi
if [ ! -f "$DB" ]; then
  echo "run_clang_tidy: $DB not found (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON," >&2
  echo "e.g. cmake --preset lint)" >&2
  exit 2
fi

# Prefer the parallel runner when available.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$BUILD_DIR" "$(pwd)/src/.*\.cpp$"
  exit $?
fi

# Fallback: serial clang-tidy over the src/ entries of the database.
FILES=$(sed -n 's/^ *"file": *"\(.*\)",*$/\1/p' "$DB" | grep "/src/.*\.cpp$" | sort -u)
if [ -z "$FILES" ]; then
  echo "run_clang_tidy: no src/ TUs in $DB" >&2
  exit 2
fi
STATUS=0
for f in $FILES; do
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
