// Internal rule entry points shared between the analyzer's translation units.
// Everything here consumes the lexer.hpp representations; lint_core.cpp owns
// dispatch and suppression handling.
#pragma once

#include <string>
#include <vector>

#include "call_graph.hpp"
#include "lexer.hpp"
#include "lint_core.hpp"

namespace ppatc::lint::detail {

void rule_layering(const std::string& rel, const std::vector<Include>& includes,
                   const LayeringConfig& config, std::vector<Finding>& out);

void rule_parallel_safety(const std::string& rel, const std::vector<Token>& tokens,
                          std::vector<Finding>& out);

void rule_units_escape(const std::string& rel, const std::vector<Token>& tokens,
                       std::vector<Finding>& out);

void rule_lifetime(const std::string& rel, const FileText& text, std::vector<Finding>& out);

/// The three transitive rules (signal-safety, noexcept-escape,
/// realtime-purity) over the whole-repo call graph. Only rules enabled by
/// `config.rules` run. Findings are appended unsorted; the caller owns
/// deterministic ordering.
void run_interproc_rules(const std::vector<FileIndex>& files, const CallGraph& graph,
                         const Config& config, std::vector<Finding>& out);

/// The three dataflow rules (determinism-taint, fp-reduction-order,
/// interproc-units-escape) over the summary fixpoint. Only rules enabled by
/// `config.rules` contribute findings; the engine runs once for all three.
/// The out-params receive the lint.dataflow_summaries /
/// lint.fixpoint_iterations self-metrics (0 when no dataflow rule is
/// enabled). Findings are appended unsorted; the caller owns ordering.
void run_dataflow_rules(const std::vector<FileIndex>& files, const CallGraph& graph,
                        const Config& config, std::vector<Finding>& out,
                        std::size_t* dataflow_summaries, std::size_t* fixpoint_iterations);

}  // namespace ppatc::lint::detail
