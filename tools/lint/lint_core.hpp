// ppatc-lint: project-policy static analyzer.
//
// Walks a source tree and enforces, as machine-checked policy, the invariants
// the ppatc codebase otherwise upholds only by convention. Sixteen rules, in
// four generations:
//
// Line-oriented (PR 3):
//   unit-typed-api    public headers must not declare raw double parameters /
//                     aggregate fields whose names imply a physical dimension
//                     (width_um, energy_j, lifetime_s, ...) when a
//                     ppatc::units strong type exists for that dimension.
//   determinism       no wall-clock or nondeterministic-seed sources in src/
//                     (rand, srand, std::random_device, time(NULL),
//                     system_clock, gettimeofday, ...): every evaluation path
//                     must be bit-reproducible for a fixed seed.
//   unordered-iter    no range-for over std::unordered_{map,set} instances —
//                     iteration order is implementation-defined, so any
//                     accumulation over it is a nondeterminism leak. Escapes:
//                     single-element containers and folds that are sorted
//                     immediately after the loop.
//   env-allowlist     std::getenv only in the blessed runtime/observability
//                     configuration sites; model code must not read the
//                     environment.
//   pragma-once       every public header carries #pragma once.
//   obs-name-literal  metric/span/flight-event names at obs call sites
//                     (obs::counter, obs::gauge, obs::histogram, obs::Span,
//                     obs::flight_mark, obs::flight_count) must be string
//                     literals: the flight rings store the name pointer and
//                     the metrics registry interns names for the process
//                     lifetime, so runtime-built names dangle or explode
//                     cardinality. The obs module itself is exempt.
//
// Scope-aware (PR 5, built on the lexer.hpp token stream):
//   layering          the include graph over src/<module>/ must stay inside
//                     the DAG declared in tools/lint/layering.toml; relative
//                     includes that reach another module's internals are
//                     always violations.
//   parallel-safety   lambdas passed to parallel_for / parallel_for_chunks /
//                     parallel_reduce / parallel_invoke must be chunk-pure:
//                     no writes to by-reference captures that are not
//                     index-addressed output slots, no mutexes or other
//                     blocking synchronization, no thread-identity APIs.
//   units-escape      locals initialized from in_*() unwraps carry a
//                     (dimension, unit) tag; +/-/comparisons that mix tags
//                     and named-conversion calls fed the wrong tag are
//                     flagged, as is any raw .value() unwrap.
//   lifetime          functions returning string_view / span / a reference
//                     must not return a body-local or a temporary.
//
// Interprocedural (PR 8, built on the whole-repo call graph assembled from
// the per-file symbol indexes — see symbols.hpp / call_graph.hpp):
//   signal-safety     every function transitively reachable from a registered
//                     sigaction/signal handler or std::set_terminate hook may
//                     only touch the POSIX async-signal-safe allowlist plus
//                     internal helpers annotated `// ppatc-lint: signal-safe`.
//                     Allocation, std::string, iostreams, locks, snprintf and
//                     function-local statics in the cone are all flagged.
//   noexcept-escape   a `noexcept` function that transitively reaches a
//                     `throw` (or a known-throwing callee such as
//                     PPATC_EXPECT / std::sto*) with no intervening try/catch
//                     and no noexcept barrier on the path.
//   realtime-purity   functions reachable from parallel_for / parallel_reduce
//                     lambda bodies, the ISS threaded-dispatch loop, and the
//                     flight-recorder event paths must not allocate, lock, or
//                     perform I/O. `// ppatc-lint: allow(realtime)` suppresses
//                     a site; `static`/`thread_local` initializer statements
//                     are recognized as first-call-only lazy init and their
//                     edges pruned.
//
// Dataflow (PR 10, built on the per-function abstract interpreter and the
// call-graph summary fixpoint — see dataflow.hpp):
//   determinism-taint    values derived from pointer identity (integer casts
//                        of pointers, std::hash of a pointer, `this`), thread
//                        identity (thread::id, gettid, hardware_concurrency)
//                        or unordered-container iteration order must never
//                        reach a RunManifest::record* call or a site annotated
//                        `// ppatc: cache-key`. Findings name the full
//                        source -> sink path across function boundaries.
//   fp-reduction-order   floating-point accumulators mutated inside parallel
//                        lambdas outside the chunk-indexed discipline
//                        (out[i] / partials[chunk.index] stay legal; `sum +=`
//                        on a capture is flagged), including helpers that
//                        accumulate into a double& parameter on the lambda's
//                        behalf.
//   interproc-units-escape  raw doubles born from in_*() unwraps keep their
//                        (dimension, unit) tag across call and return edges;
//                        cross-function mixes, wrong-factory re-wraps and
//                        callee parameter-expectation mismatches are flagged
//                        (the PR-5 units-escape rule stays brace-local).
//
// A further leg — header self-containment — is enforced at build time by
// compiling one generated TU per public header (see tools/lint/CMakeLists).
//
// Every rule is individually suppressible at a site with
//     // ppatc-lint: allow(<rule>[, <rule>...])
// on the offending line or the line directly above it. Suppressions are
// counted per rule and listed in the report so they stay visible. Findings
// that predate a rule can instead be parked in a committed baseline file
// (see Baseline below); baselined findings do not fail the lint but are
// carried into the SARIF output with an external suppression.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ppatc::lint {

/// One rule hit at one site.
struct Finding {
  std::string rule;
  std::string file;  ///< path relative to the scan root, '/'-separated
  int line = 0;      ///< 1-based
  std::string message;
  bool suppressed = false;  ///< an allow() comment covers this site
  bool baselined = false;   ///< a baseline entry covers this site
  // Column members sit after the flags so the pre-existing 6-element
  // aggregate initializers keep compiling unchanged.
  int col = 0;      ///< 1-based start column; 0 = whole-line finding
  int end_col = 0;  ///< 1-based exclusive end column (one-token SARIF regions)

  /// One step of a finding's supporting path (a taint source, an intermediate
  /// call edge, a remote accumulation site). Rendered as SARIF
  /// relatedLocations so code-scanning shows the whole chain.
  struct RelatedLocation {
    std::string file;  ///< relative path, '/'-separated
    int line = 0;      ///< 1-based
    std::string note;  ///< "source: reinterpret_cast...", "via helper()", ...
  };
  /// Path-region chain, source first. Stays default-empty for the line and
  /// scope rules; sits last (with a default) so 6-element aggregate
  /// initializers still compile warning-free.
  std::vector<RelatedLocation> related = {};
};

/// Result of linting a tree.
struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;

  /// Findings neither suppressed in-source nor baselined: these fail the lint.
  [[nodiscard]] std::size_t violation_count() const;
  [[nodiscard]] std::size_t suppression_count() const;
  [[nodiscard]] std::size_t baselined_count() const;
  /// Per-rule counts of unsuppressed / suppressed findings (baselined counts
  /// as neither).
  [[nodiscard]] std::map<std::string, std::size_t> count_by_rule(bool suppressed) const;
  [[nodiscard]] bool clean() const { return violation_count() == 0; }
};

/// The declared module-layering DAG: module name -> modules whose public
/// headers it may include. Parsed from tools/lint/layering.toml.
struct LayeringConfig {
  std::map<std::string, std::set<std::string>> allowed;

  [[nodiscard]] bool empty() const { return allowed.empty(); }
};

/// Parses the layering.toml text. Grammar (one declaration per line):
///     [layers]                      # section header, ignored
///     module = ["dep", "dep2"]      # module may include those modules
/// Throws std::runtime_error on malformed lines, dependencies on undeclared
/// modules, self-dependencies, or cycles in the declared graph.
[[nodiscard]] LayeringConfig parse_layering(const std::string& text);

/// The declarative getenv allowlist: files (matched by relative-path suffix)
/// where std::getenv is permitted, grouped for documentation. Parsed from
/// tools/lint/env_allowlist.toml.
struct EnvAllowlistEntry {
  std::string file;  ///< relative-path suffix, as written in the toml
  int line = 0;      ///< 1-based toml line (stale-entry findings point here)
};
struct EnvAllowlist {
  std::vector<EnvAllowlistEntry> entries;

  [[nodiscard]] bool empty() const { return entries.empty(); }
};

/// Parses the env_allowlist.toml text. Grammar (one declaration per line):
///     [groups]                       # section header, ignored
///     group = ["a.cpp", "b/c.cpp"]   # group name is documentation only
/// Throws std::runtime_error on malformed lines, non-identifier group names,
/// duplicate groups, entries without a .cpp/.hpp/.h suffix, or duplicate file
/// entries across groups.
[[nodiscard]] EnvAllowlist parse_env_allowlist(const std::string& text);

/// Tuning knobs; the defaults encode the ppatc policy.
struct Config {
  /// Files (matched by relative-path suffix) where getenv is permitted.
  /// Empty means: run_lint loads <root>/tools/lint/env_allowlist.toml (the
  /// declarative source of truth — the blessed runtime/observability
  /// configuration sites live there, grouped and commented) and additionally
  /// reports any allowlist entry that matches no scanned file, so the list
  /// can only shrink. Tests may pre-populate this to bypass the toml.
  std::vector<std::string> env_allowlist;

  /// Declared module layering. Empty disables the layering rule. run_lint
  /// auto-loads <root>/tools/lint/layering.toml when this is empty.
  LayeringConfig layering;

  /// When non-empty, only these rules run (the CLI's --rules filter).
  std::vector<std::string> rules;

  /// Named entry points treated as realtime-purity roots in addition to the
  /// lambdas handed to the parallel runtime: the ISS threaded-dispatch loop
  /// and the flight-recorder event paths.
  std::vector<std::string> realtime_roots{"run_threaded",     "flight_record",
                                          "flight_span_begin", "flight_span_end",
                                          "flight_mark",       "flight_count"};

  /// Files (matched by relative-path suffix) the realtime rule neither checks
  /// nor traverses into: the deterministic pool's own scheduling machinery is
  /// the thing providing the parallelism, and it legitimately locks.
  std::vector<std::string> realtime_exempt{"runtime/parallel.cpp",
                                           "ppatc/runtime/parallel.hpp"};
};

/// Analyzer self-metrics from one run_lint pass: published through the
/// ppatc::obs metrics registry (lint.* names) so a PPATC_METRICS sidecar
/// captures them, and returned to the CLI for the human-readable footer.
struct InterprocStats {
  std::size_t functions_indexed = 0;
  std::size_t call_edges = 0;
  std::size_t unresolved_externals = 0;  ///< distinct unresolved callee names
  std::size_t dataflow_summaries = 0;    ///< functions with a nontrivial summary
  std::size_t fixpoint_iterations = 0;   ///< summary passes until convergence
};

/// Names of all rules the analyzer implements, sorted.
[[nodiscard]] const std::vector<std::string>& all_rules();

// ---- rule explanations ------------------------------------------------------

/// Human-facing documentation for one rule, surfaced by `--explain <rule>`
/// and reused for the SARIF reportingDescriptor short descriptions.
struct RuleExplain {
  std::string summary;      ///< one sentence: what the rule enforces
  std::string rationale;    ///< why the project cares (the bug class)
  std::string example;      ///< a representative finding message or snippet
  std::string suppression;  ///< the exact allow()/baseline syntax for the rule
};

/// Explanation table covering every all_rules() entry.
[[nodiscard]] const std::map<std::string, RuleExplain>& rule_explanations();

/// Formatted --explain output for one rule name (or "all"). Throws
/// std::runtime_error for unknown rule names.
[[nodiscard]] std::string explain_rule(const std::string& rule);

/// Lints every .hpp/.cpp under `root`, skipping build*/.git/header_tus
/// directories. If `root` has a `src/` child, only that subtree is scanned
/// (so passing a repo root lints exactly the library sources). Paths in the
/// report are relative to the scanned directory. Files are linted in
/// parallel on ppatc::runtime::parallel_for; findings are merged in sorted
/// file order, so reports are byte-stable at any thread count.
///
/// When any interprocedural rule is enabled (or `callgraph_json` is wanted),
/// the same parallel pass also builds per-file symbol indexes; the call graph
/// is then linked serially and the transitive rules run over it, appending
/// their findings in sorted order after the per-file ones — still byte-stable
/// at any thread count. `callgraph_json`, when non-null, receives the
/// --dump-callgraph JSON; `stats`, when non-null, receives the self-metrics
/// (which are also published to the ppatc::obs registry either way).
[[nodiscard]] Report run_lint(const std::filesystem::path& root, const Config& config,
                              std::string* callgraph_json, InterprocStats* stats);
[[nodiscard]] Report run_lint(const std::filesystem::path& root, const Config& config = {});

/// Lints a single file's contents (exposed for the fixture tests).
/// `rel` is the path used in findings and for the env allowlist /
/// public-header ("include/" in path) checks; its first path component is
/// the module name for the layering rule.
void lint_text(const std::string& rel, const std::string& contents, const Config& config,
               std::vector<Finding>& out);

/// Human-readable report (per-rule totals, then one line per finding).
[[nodiscard]] std::string format_report(const Report& report);

// ---- baseline ---------------------------------------------------------------

/// One parked pre-existing finding. Matching is exact on (rule, file, line).
struct BaselineEntry {
  std::string rule;
  std::string file;
  int line = 0;
  std::string rationale;  ///< required: why this finding is allowed to stand
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Parses a baseline file. Each non-comment line must read
///     <rule> <file>:<line> -- <rationale>
/// Throws std::runtime_error on malformed lines or entries with an empty
/// rationale (the policy: every parked finding carries a written reason).
[[nodiscard]] Baseline parse_baseline(const std::string& text);

/// Marks findings covered by the baseline (`baselined = true`). Returns the
/// entries that matched nothing — stale entries a caller should fail on so
/// the baseline can only shrink.
[[nodiscard]] std::vector<BaselineEntry> apply_baseline(Report& report,
                                                        const Baseline& baseline);

/// Serializes entries in the parse_baseline format (for --write-baseline).
[[nodiscard]] std::string format_baseline(const std::vector<BaselineEntry>& entries);

// ---- SARIF ------------------------------------------------------------------

/// Renders the report as a SARIF 2.1.0 log (one run, one result per finding).
/// `uri_prefix` is prepended to each finding's file to make repo-relative
/// URIs ("src/" when the scan root was the src/ subtree). In-source
/// suppressions and baselined findings carry SARIF suppression objects, so
/// code-scanning shows them as suppressed rather than open.
[[nodiscard]] std::string to_sarif(const Report& report, const std::string& uri_prefix);

}  // namespace ppatc::lint
