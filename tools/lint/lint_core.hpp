// ppatc-lint: project-policy static analyzer.
//
// Walks a source tree and enforces, as machine-checked policy, the invariants
// the ppatc codebase otherwise upholds only by convention:
//
//   unit-typed-api    public headers must not declare raw double parameters /
//                     aggregate fields whose names imply a physical dimension
//                     (width_um, energy_j, lifetime_s, ...) when a
//                     ppatc::units strong type exists for that dimension.
//   determinism       no wall-clock or nondeterministic-seed sources in src/
//                     (rand, srand, std::random_device, time(NULL),
//                     system_clock, gettimeofday, ...): every evaluation path
//                     must be bit-reproducible for a fixed seed.
//   unordered-iter    no range-for over std::unordered_{map,set} instances —
//                     iteration order is implementation-defined, so any
//                     accumulation over it is a nondeterminism leak.
//   env-allowlist     std::getenv only in the blessed runtime/observability
//                     configuration sites; model code must not read the
//                     environment.
//   pragma-once       every public header carries #pragma once.
//
// A fifth leg — header self-containment — is enforced at build time by
// compiling one generated TU per public header (see tools/lint/CMakeLists).
//
// Every rule is individually suppressible at a site with
//     // ppatc-lint: allow(<rule>[, <rule>...])
// on the offending line or the line directly above it. Suppressions are
// counted and listed in the report so they stay visible.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace ppatc::lint {

/// One rule hit at one site.
struct Finding {
  std::string rule;
  std::string file;  ///< path relative to the scan root, '/'-separated
  int line = 0;      ///< 1-based
  std::string message;
  bool suppressed = false;  ///< an allow() comment covers this site
};

/// Result of linting a tree.
struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;

  [[nodiscard]] std::size_t violation_count() const;
  [[nodiscard]] std::size_t suppression_count() const;
  /// Per-rule counts of (un)suppressed findings.
  [[nodiscard]] std::map<std::string, std::size_t> count_by_rule(bool suppressed) const;
  [[nodiscard]] bool clean() const { return violation_count() == 0; }
};

/// Tuning knobs; the defaults encode the ppatc policy.
struct Config {
  /// Files (matched by relative-path suffix) where getenv is permitted. The
  /// blessed call sites live in these three files: the thread-count override
  /// (PPATC_THREADS), the tracing/metrics switches (PPATC_TRACE,
  /// PPATC_METRICS), and the run-manifest output path (BENCH_MANIFEST_OUT).
  std::vector<std::string> env_allowlist{"runtime/parallel.cpp", "obs/trace.cpp",
                                         "obs/report.cpp"};
};

/// Lints every .hpp/.cpp under `root`, skipping build*/.git/header_tus
/// directories. If `root` has a `src/` child, only that subtree is scanned
/// (so passing a repo root lints exactly the library sources). Paths in the
/// report are relative to the scanned directory. File order is sorted, so
/// reports are byte-stable.
[[nodiscard]] Report run_lint(const std::filesystem::path& root, const Config& config = {});

/// Lints a single file's contents (exposed for the fixture tests).
/// `rel` is the path used in findings and for the env allowlist /
/// public-header ("include/" in path) checks.
void lint_text(const std::string& rel, const std::string& contents, const Config& config,
               std::vector<Finding>& out);

/// Human-readable report (per-rule totals, then one line per finding).
[[nodiscard]] std::string format_report(const Report& report);

}  // namespace ppatc::lint
