// Module-layering rule: the include graph over src/<module>/ must stay
// inside the DAG declared in tools/lint/layering.toml. Each offending
// #include is one finding, so a violation names its exact file:line.
#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "rules_internal.hpp"

namespace ppatc::lint {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("layering.toml:" + std::to_string(line) + ": " + what);
}

// Depth-first cycle check over the declared graph.
void check_acyclic(const LayeringConfig& config) {
  enum class Mark { kUnvisited, kInProgress, kDone };
  std::map<std::string, Mark> marks;
  for (const auto& [mod, deps] : config.allowed) marks[mod] = Mark::kUnvisited;

  // Iterative DFS; `second` is the next dependency to explore.
  for (const auto& [start, start_deps] : config.allowed) {
    if (marks[start] != Mark::kUnvisited) continue;
    std::vector<std::pair<std::string, std::set<std::string>::const_iterator>> stack;
    marks[start] = Mark::kInProgress;
    stack.emplace_back(start, config.allowed.at(start).begin());
    while (!stack.empty()) {
      auto& [mod, it] = stack.back();
      const std::set<std::string>& deps = config.allowed.at(mod);
      if (it == deps.end()) {
        marks[mod] = Mark::kDone;
        stack.pop_back();
        continue;
      }
      const std::string dep = *it++;
      if (marks[dep] == Mark::kInProgress) {
        throw std::runtime_error("layering.toml: declared layering has a cycle through '" + dep +
                                 "' — the module graph must be a DAG");
      }
      if (marks[dep] == Mark::kUnvisited) {
        marks[dep] = Mark::kInProgress;
        stack.emplace_back(dep, config.allowed.at(dep).begin());
      }
    }
  }
}

}  // namespace

EnvAllowlist parse_env_allowlist(const std::string& text) {
  EnvAllowlist config;
  std::set<std::string> groups;
  std::set<std::string> seen_files;
  std::istringstream is{text};
  std::string raw;
  int lineno = 0;
  const auto efail = [](int line, const std::string& what) -> void {
    throw std::runtime_error("env_allowlist.toml:" + std::to_string(line) + ": " + what);
  };
  while (std::getline(is, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') continue;  // section header
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) efail(lineno, "expected `group = [\"file.cpp\", ...]`");
    const std::string group = trim(line.substr(0, eq));
    if (group.empty() ||
        !std::all_of(group.begin(), group.end(), [](char c) { return is_ident_char(c); })) {
      efail(lineno, "bad group name '" + group + "'");
    }
    if (!groups.insert(group).second) efail(lineno, "group '" + group + "' declared twice");
    std::string rhs = trim(line.substr(eq + 1));
    if (rhs.size() < 2 || rhs.front() != '[' || rhs.back() != ']') {
      efail(lineno, "expected a [\"file.cpp\", ...] list for group '" + group + "'");
    }
    std::string inner = rhs.substr(1, rhs.size() - 2);
    std::replace(inner.begin(), inner.end(), ',', ' ');
    std::istringstream items{inner};
    std::string item;
    while (items >> item) {
      if (item.size() < 2 || item.front() != '"' || item.back() != '"') {
        efail(lineno, "files must be quoted strings");
      }
      const std::string file = item.substr(1, item.size() - 2);
      if (!file.ends_with(".cpp") && !file.ends_with(".hpp") && !file.ends_with(".h")) {
        efail(lineno, "entry '" + file + "' is not a .cpp/.hpp/.h source suffix");
      }
      if (!seen_files.insert(file).second) {
        efail(lineno, "entry '" + file + "' listed twice across groups");
      }
      config.entries.push_back({file, lineno});
    }
  }
  return config;
}

LayeringConfig parse_layering(const std::string& text) {
  LayeringConfig config;
  std::istringstream is{text};
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') continue;  // section header
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(lineno, "expected `module = [\"dep\", ...]`");
    const std::string module = trim(line.substr(0, eq));
    if (module.empty() ||
        !std::all_of(module.begin(), module.end(), [](char c) { return is_ident_char(c); })) {
      fail(lineno, "bad module name '" + module + "'");
    }
    if (config.allowed.contains(module)) fail(lineno, "module '" + module + "' declared twice");
    std::string rhs = trim(line.substr(eq + 1));
    if (rhs.size() < 2 || rhs.front() != '[' || rhs.back() != ']') {
      fail(lineno, "expected a [\"dep\", ...] list for '" + module + "'");
    }
    std::set<std::string> deps;
    std::string inner = rhs.substr(1, rhs.size() - 2);
    std::replace(inner.begin(), inner.end(), ',', ' ');
    std::istringstream items{inner};
    std::string item;
    while (items >> item) {
      if (item.size() < 2 || item.front() != '"' || item.back() != '"') {
        fail(lineno, "dependencies must be quoted strings");
      }
      const std::string dep = item.substr(1, item.size() - 2);
      if (dep == module) fail(lineno, "module '" + module + "' depends on itself");
      deps.insert(dep);
    }
    config.allowed.emplace(module, std::move(deps));
  }
  for (const auto& [module, deps] : config.allowed) {
    for (const std::string& dep : deps) {
      if (!config.allowed.contains(dep)) {
        throw std::runtime_error("layering.toml: module '" + module +
                                 "' depends on undeclared module '" + dep + "'");
      }
    }
  }
  check_acyclic(config);
  return config;
}

namespace detail {

void rule_layering(const std::string& rel, const std::vector<Include>& includes,
                   const LayeringConfig& config, std::vector<Finding>& out) {
  const std::size_t slash = rel.find('/');
  if (slash == std::string::npos) return;  // not under a module directory
  const std::string module = rel.substr(0, slash);
  const auto self = config.allowed.find(module);
  if (self == config.allowed.end()) return;  // undeclared module: out of scope

  for (const Include& inc : includes) {
    if (inc.angled) continue;  // system headers are not module edges
    // Public cross-module include: "ppatc/<m>/...".
    if (inc.target.starts_with("ppatc/")) {
      const std::size_t m_end = inc.target.find('/', 6);
      if (m_end == std::string::npos) continue;
      const std::string target = inc.target.substr(6, m_end - 6);
      if (target == module) continue;
      if (!config.allowed.contains(target)) continue;  // not a declared module
      if (!self->second.contains(target)) {
        std::string allowed_list;
        for (const std::string& d : self->second) {
          if (!allowed_list.empty()) allowed_list += ", ";
          allowed_list += d;
        }
        out.push_back({"layering", rel, inc.line,
                       "module '" + module + "' must not include \"" + inc.target +
                           "\": layering.toml allows only {" +
                           (allowed_list.empty() ? "no dependencies" : allowed_list) + "}",
                       false, false});
      }
      continue;
    }
    // Relative include that escapes the module: reaching another module's
    // internals bypasses its public include/ surface — always a violation,
    // even along a declared edge.
    if (inc.target.find("../") != std::string::npos) {
      std::string path = inc.target;
      std::size_t up = 0;
      while (path.starts_with("../")) {
        path = path.substr(3);
        ++up;
      }
      const std::size_t seg_end = path.find('/');
      const std::string first = seg_end == std::string::npos ? "" : path.substr(0, seg_end);
      if (up > 0 && config.allowed.contains(first) && first != module) {
        out.push_back({"layering", rel, inc.line,
                       "relative include \"" + inc.target + "\" reaches into module '" + first +
                           "' internals; depend on its public ppatc/" + first + "/ headers instead",
                       false, false});
      }
    }
  }
}

}  // namespace detail

}  // namespace ppatc::lint
