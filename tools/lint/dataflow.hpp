// Intraprocedural def-use/dataflow layer with interprocedural summaries —
// the analyzer's fourth generation, built on the retained token streams
// (FileIndex::tokens) and the PR-8 call graph.
//
// The abstract domain is a small product lattice per tracked value:
//   * a taint set — at most one TaintSource per TaintKind (pointer identity,
//     thread identity, unordered-container iteration order), first source
//     wins so provenance stays stable across joins,
//   * the set of caller parameters flowing into the value,
//   * an optional (dimension, unit) tag born from an in_*() unwrap, with a
//     cross-function provenance flag; joining disagreeing tags poisons the
//     tag to "none" (sticky conflict), so a mixed value never claims a unit.
//
// Each function body is walked once per fixpoint pass with a brace-scoped
// symbol table: declarations and plain assignments are kills (the variable's
// value is replaced by the evaluated right-hand side), compound assignments
// are joins. The walk produces a FunctionSummary — which taints/tags the
// return value carries, which parameters flow to the return or into a sink,
// which reference parameters are floating-point accumulators, and which
// (dimension, unit) each raw-double parameter is expected to carry. The
// summaries are propagated to a fixpoint over the call graph (the lattice is
// finite and joins are first-wins, so a handful of passes converge; a hard
// iteration cap backstops pathological inputs). A final pass re-walks every
// body with the converged summaries and records the rule-relevant events in
// deterministic node order; rules_dataflow.cpp turns events into findings.
//
// Like everything in the analyzer this is a token-stream approximation:
// aliasing is not modeled, array elements are untracked, and a statement the
// walker cannot classify simply contributes no facts. The three consuming
// rules are written so the approximation costs recall, not precision.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "call_graph.hpp"
#include "symbols.hpp"

namespace ppatc::lint {

// ---- units vocabulary -------------------------------------------------------
// Shared between the brace-local units-escape rule (rules_scope.cpp) and the
// cross-function one, so both generations agree on what in_*() means.

/// A (dimension, unit) tag: the Quantity alias name and the unit word.
struct UnitDim {
  const char* dim;   ///< "Energy", "Duration", ...
  const char* unit;  ///< "joules", "seconds", ...
};

/// unit word -> tag, for every units:: factory the project defines.
[[nodiscard]] const std::map<std::string, UnitDim>& units_vocabulary();

/// Tag produced by an `in_<unit>()` accessor call; nullptr if `fn` is not one.
[[nodiscard]] const UnitDim* unwrap_accessor(const std::string& fn);

/// Tag consumed by a `units::<unit>()` factory call; nullptr otherwise.
[[nodiscard]] const UnitDim* unit_factory(const std::string& fn);

// ---- taint lattice ----------------------------------------------------------

enum class TaintKind {
  kPointerIdentity,  ///< pointer-to-integer cast, std::hash of a pointer, `this`
  kThreadIdentity,   ///< thread::id / gettid / hardware_concurrency
  kUnorderedOrder,   ///< iteration order of an unordered container
};

/// One taint with its provenance: where it was born and which callees it
/// crossed (qnames, caller-first) to get here.
struct TaintSource {
  TaintKind kind = TaintKind::kPointerIdentity;
  std::string desc;  ///< "reinterpret_cast<uintptr_t>", "gettid()", ...
  std::string file;  ///< file of the source site
  int line = 0;      ///< 1-based line of the source site
  std::vector<std::string> via;  ///< function qnames crossed, nearest-first
};

/// Abstract value of one tracked variable or expression.
struct Value {
  std::vector<TaintSource> taints;  ///< at most one per TaintKind (first wins)
  std::vector<int> params;          ///< caller parameter indices flowing in, sorted
  const UnitDim* units = nullptr;   ///< (dimension, unit) tag; nullptr = untagged
  bool units_cross_function = false;  ///< tag crossed a call or return edge
  bool units_conflict = false;        ///< joined tags disagreed: poisoned to none
  std::string units_desc;             ///< "in_seconds", "return of 'f'"
  std::string units_file;
  int units_line = 0;
  std::vector<std::string> units_via;  ///< callees the tag crossed, nearest-first
  bool fp = false;  ///< declared double/float (fp-reduction-order targets)

  [[nodiscard]] bool tainted() const { return !taints.empty(); }
  [[nodiscard]] const TaintSource* taint_of(TaintKind kind) const;
  /// Adds a taint unless one of that kind is already present (first wins).
  void add_taint(TaintSource source);
  void add_param(int index);
  /// Lattice join: taint/param union, units first-wins with sticky conflict.
  void join(const Value& other);
};

// ---- per-function summaries -------------------------------------------------

/// A parameter that transitively reaches a determinism sink inside the callee.
struct ParamSink {
  int param = 0;
  std::string sink;  ///< "RunManifest::record" / "cache-key annotation"
  std::string file;  ///< file of the sink site
  int line = 0;
  std::vector<std::string> via;  ///< callees crossed below this function
};

/// A reference floating-point parameter the callee compound-assigns — the
/// accumulator shape fp-reduction-order bans inside parallel regions.
struct ParamAccum {
  int param = 0;
  std::string file;  ///< file of the `+=` site
  int line = 0;
  std::vector<std::string> via;  ///< callees crossed below this function
};

/// The (dimension, unit) a raw-double parameter is expected to carry, learned
/// from how the callee combines it with tagged values or re-wraps it.
struct ParamUnits {
  const UnitDim* units = nullptr;
  bool conflict = false;  ///< disagreeing expectations: no claim made
  std::string desc;       ///< what established the expectation
  std::string file;
  int line = 0;
  std::vector<std::string> via;
};

/// Everything callers need to know about one function, computed to fixpoint.
struct FunctionSummary {
  Value ret;  ///< returned value: intrinsic taints, param flows, units tag
  std::vector<ParamSink> param_sinks;
  std::vector<ParamAccum> fp_accum_params;
  std::vector<ParamUnits> param_units;  ///< sized to the definition's params
  bool analyzed = false;

  [[nodiscard]] bool nontrivial() const;
};

// ---- rule events ------------------------------------------------------------

/// One rule-relevant fact observed during the final emission walk. The engine
/// detects the shapes; rules_dataflow.cpp owns messages and suppressions.
struct DataflowEvent {
  enum class Kind {
    kTaintSink,      ///< determinism-taint: tainted value reaches a sink
    kFpSharedAccum,  ///< fp-reduction-order: direct `x +=` on a shared fp value
    kFpHelperAccum,  ///< fp-reduction-order: helper accumulates into a shared arg
    kUnitsMix,       ///< interproc-units-escape: +/-/cmp over disagreeing tags
    kUnitsFactory,   ///< interproc-units-escape: tagged value into wrong factory
    kUnitsParam,     ///< interproc-units-escape: arg tag != callee expectation
  };
  Kind kind = Kind::kTaintSink;
  const FileIndex* file = nullptr;  ///< file of the event site
  const FunctionDef* fn = nullptr;  ///< enclosing function (def-line allow())
  int line = 0;
  int col = 0;
  std::size_t token_len = 0;

  TaintSource taint;             ///< kTaintSink: the source that arrived
  std::string sink;              ///< kTaintSink: sink description
  std::vector<std::string> via;  ///< callees between this function and the event
  std::string target;            ///< variable / argument name involved
  std::string helper;            ///< kFpHelperAccum: qname of the mutating helper
  std::string helper_file;       ///< kFpHelperAccum / kUnitsParam: remote site file
  int helper_line = 0;

  const UnitDim* have = nullptr;  ///< units events: the tag that arrived
  std::string have_desc;          ///< provenance of `have` ("in_seconds", ...)
  std::string have_file;
  int have_line = 0;
  std::vector<std::string> have_via;
  bool have_cross = false;        ///< `have` crossed a function boundary
  const UnitDim* want = nullptr;  ///< units events: the tag expected instead
  std::string want_desc;
  std::string other;  ///< kUnitsMix: the second operand's name
};

/// Result of the summary fixpoint plus the final emission walk.
struct DataflowResult {
  std::vector<FunctionSummary> summaries;  ///< parallel to graph.nodes
  std::vector<DataflowEvent> events;       ///< deterministic node/token order
  std::size_t fixpoint_iterations = 0;     ///< passes until convergence (or cap)
  std::size_t summaries_computed = 0;      ///< nodes with a nontrivial summary
};

/// Runs the per-function abstract interpreter over every graph node to a
/// summary fixpoint, then once more to collect events. Serial and
/// deterministic: node order is file order then definition order, events
/// within a node follow token order.
[[nodiscard]] DataflowResult compute_dataflow(const std::vector<FileIndex>& files,
                                              const CallGraph& graph);

}  // namespace ppatc::lint
