// ppatc-lint lexer: the shared front end for every analyzer rule.
//
// Produces, from one file's contents:
//   * raw lines (for suppression comments and #include extraction),
//   * "code" lines with comments / string / char literals blanked out
//     (columns preserved, so offsets line up with the raw text),
//   * a flat token stream (identifiers, numbers, punctuators) with 1-based
//     line numbers — enough structure for brace/scope tracking, lambda
//     parsing, and the per-file symbol tables the scope-aware rules build,
//   * the list of #include directives (taken from the raw lines, before
//     string stripping erases the include path).
//
// This is deliberately not a C++ parser: preprocessor conditionals are not
// evaluated and templates are not instantiated. The rules that consume the
// stream are written to be conservative under that approximation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppatc::lint {

bool is_ident_char(char c);

/// Raw + comment/string-stripped views of a file, line by line.
struct FileText {
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

/// Splits into lines and blanks comments, string and character literals
/// (replaced by spaces so columns line up). Tracks /* */ across lines. Raw
/// string literals are handled approximately (treated like plain strings).
FileText split_and_strip(const std::string& contents);

enum class TokKind { kIdent, kNumber, kPunct };

/// One lexical token. `text` is the exact source spelling; multi-character
/// punctuators (::, ->, +=, <<=, ...) come through as single tokens.
struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 1-based start column in the stripped line
};

/// Tokenizes the stripped code lines. Preprocessor directive lines (first
/// non-blank character '#') are skipped entirely — their content is exposed
/// through `Include` records instead.
std::vector<Token> tokenize(const FileText& text);

/// One #include directive.
struct Include {
  std::string target;  ///< path between the delimiters, verbatim
  bool angled = false; ///< <...> (system) vs "..." (project)
  int line = 0;        ///< 1-based
};

/// Extracts #include directives from the raw lines.
std::vector<Include> extract_includes(const std::vector<std::string>& raw);

/// Index of the matching close token for `open_index` (tokens[open_index]
/// must be one of ( [ { ). Returns tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open_index);

/// Rules allowed on each raw line via "// ppatc-lint: allow(rule-a, rule-b)".
/// Shared by the per-file driver and the interprocedural rules, which look
/// suppressions up through the symbol index rather than re-reading the file.
std::vector<std::vector<std::string>> allowed_rules_per_line(
    const std::vector<std::string>& raw);

/// A site is covered by an allow() on its own line or on the line directly
/// above (so declarations that would not fit a trailing comment stay
/// lintable). `line_index` is 0-based. "realtime" is accepted as an alias
/// for "realtime-purity" (the annotation syntax the realtime rule documents).
bool is_rule_allowed(const std::vector<std::vector<std::string>>& allowed,
                     std::size_t line_index, const std::string& rule);

}  // namespace ppatc::lint
