// The dataflow engine: per-function abstract interpretation over the retained
// token streams, per-function summaries, and the call-graph fixpoint.
// See dataflow.hpp for the domain and the overall shape.
#include "dataflow.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace ppatc::lint {

// ---- units vocabulary -------------------------------------------------------

const std::map<std::string, UnitDim>& units_vocabulary() {
  static const std::map<std::string, UnitDim> kTable{
      {"joules", {"Energy", "joules"}},
      {"kilowatt_hours", {"Energy", "kilowatt_hours"}},
      {"watt_hours", {"Energy", "watt_hours"}},
      {"picojoules", {"Energy", "picojoules"}},
      {"femtojoules", {"Energy", "femtojoules"}},
      {"watts", {"Power", "watts"}},
      {"milliwatts", {"Power", "milliwatts"}},
      {"microwatts", {"Power", "microwatts"}},
      {"nanowatts", {"Power", "nanowatts"}},
      {"seconds", {"Duration", "seconds"}},
      {"nanoseconds", {"Duration", "nanoseconds"}},
      {"picoseconds", {"Duration", "picoseconds"}},
      {"microseconds", {"Duration", "microseconds"}},
      {"milliseconds", {"Duration", "milliseconds"}},
      {"hours", {"Duration", "hours"}},
      {"days", {"Duration", "days"}},
      {"months", {"Duration", "months"}},
      {"square_centimetres", {"Area", "square_centimetres"}},
      {"square_millimetres", {"Area", "square_millimetres"}},
      {"square_micrometres", {"Area", "square_micrometres"}},
      {"metres", {"Length", "metres"}},
      {"millimetres", {"Length", "millimetres"}},
      {"micrometres", {"Length", "micrometres"}},
      {"nanometres", {"Length", "nanometres"}},
      {"grams_co2e", {"Carbon", "grams_co2e"}},
      {"kilograms_co2e", {"Carbon", "kilograms_co2e"}},
      {"gco2e_seconds", {"CarbonDelay", "gco2e_seconds"}},
      {"grams_per_kilowatt_hour", {"CarbonIntensity", "grams_per_kilowatt_hour"}},
      {"grams_per_square_centimetre", {"CarbonPerArea", "grams_per_square_centimetre"}},
      {"kilograms_per_square_centimetre", {"CarbonPerArea", "kilograms_per_square_centimetre"}},
      {"joules_per_square_centimetre", {"EnergyPerArea", "joules_per_square_centimetre"}},
      {"kilowatt_hours_per_square_centimetre",
       {"EnergyPerArea", "kilowatt_hours_per_square_centimetre"}},
      {"volts", {"Voltage", "volts"}},
      {"amperes", {"Current", "amperes"}},
      {"microamperes", {"Current", "microamperes"}},
      {"nanoamperes", {"Current", "nanoamperes"}},
      {"farads", {"Capacitance", "farads"}},
      {"femtofarads", {"Capacitance", "femtofarads"}},
      {"attofarads", {"Capacitance", "attofarads"}},
      {"coulombs", {"Charge", "coulombs"}},
      {"hertz", {"Frequency", "hertz"}},
      {"megahertz", {"Frequency", "megahertz"}},
      {"gigahertz", {"Frequency", "gigahertz"}},
      {"grams", {"Mass", "grams"}},
      {"picograms", {"Mass", "picograms"}},
      {"kelvin", {"Temperature", "kelvin"}},
      {"celsius", {"Temperature", "celsius"}},
  };
  return kTable;
}

const UnitDim* unwrap_accessor(const std::string& fn) {
  if (!fn.starts_with("in_")) return nullptr;
  const auto it = units_vocabulary().find(fn.substr(3));
  return it == units_vocabulary().end() ? nullptr : &it->second;
}

const UnitDim* unit_factory(const std::string& fn) {
  const auto it = units_vocabulary().find(fn);
  return it == units_vocabulary().end() ? nullptr : &it->second;
}

// ---- Value lattice operations -----------------------------------------------

const TaintSource* Value::taint_of(TaintKind kind) const {
  for (const TaintSource& t : taints) {
    if (t.kind == kind) return &t;
  }
  return nullptr;
}

void Value::add_taint(TaintSource source) {
  if (taint_of(source.kind) == nullptr) taints.push_back(std::move(source));
}

void Value::add_param(int index) {
  const auto it = std::lower_bound(params.begin(), params.end(), index);
  if (it == params.end() || *it != index) params.insert(it, index);
}

void Value::join(const Value& other) {
  for (const TaintSource& t : other.taints) add_taint(t);
  for (const int p : other.params) add_param(p);
  fp = fp || other.fp;
  if (units_conflict) return;
  if (other.units_conflict) {
    units = nullptr;
    units_conflict = true;
    return;
  }
  if (other.units == nullptr) return;
  if (units == nullptr) {
    units = other.units;
    units_cross_function = other.units_cross_function;
    units_desc = other.units_desc;
    units_file = other.units_file;
    units_line = other.units_line;
    units_via = other.units_via;
    return;
  }
  if (units != other.units) {  // table entries are interned: pointer compare
    units = nullptr;
    units_conflict = true;
  }
}

bool FunctionSummary::nontrivial() const {
  return !ret.taints.empty() || !ret.params.empty() || ret.units != nullptr ||
         !param_sinks.empty() || !fp_accum_params.empty() ||
         std::any_of(param_units.begin(), param_units.end(),
                     [](const ParamUnits& p) { return p.units != nullptr; });
}

namespace {

using Tokens = std::vector<Token>;

bool is_member_access(const std::string& t) { return t == "." || t == "->"; }

bool is_comparison(const std::string& t) {
  return t == "<" || t == ">" || t == "<=" || t == ">=" || t == "==" || t == "!=";
}

bool is_compound_assign(const std::string& t) {
  return t == "+=" || t == "-=" || t == "*=" || t == "/=";
}

// Identifier tokens that can precede a declared name as part of its type.
bool is_typeish(const Token& tok) {
  static const std::set<std::string> kNotTypes{
      "return", "delete", "new",      "else",     "case",    "goto",   "break",
      "continue", "throw", "sizeof",  "using",    "typedef", "namespace", "co_return",
      "if",     "while",  "do",       "switch",   "operator", "in",     "not"};
  if (tok.kind == TokKind::kIdent) return !kNotTypes.contains(tok.text);
  return tok.text == "&" || tok.text == "*" || tok.text == ">" || tok.text == "&&";
}

bool integer_cast_target(const Tokens& toks, std::size_t begin, std::size_t end) {
  static const std::set<std::string> kInts{"uintptr_t", "intptr_t", "size_t",  "uint64_t",
                                           "uint32_t",  "unsigned", "long",    "int",
                                           "int64_t",   "ptrdiff_t"};
  for (std::size_t k = begin; k < end; ++k) {
    if (toks[k].kind == TokKind::kIdent && kInts.contains(toks[k].text)) return true;
  }
  return false;
}

bool thread_identity_call(const std::string& name, const std::string& qualifier) {
  static const std::set<std::string> kFns{"gettid", "pthread_self", "get_id",
                                          "hardware_concurrency"};
  return kFns.contains(name) || qualifier.find("this_thread") != std::string::npos;
}

/// Member-call sink names on the run manifest (RunManifest::record*).
bool manifest_sink(const std::string& name) {
  return name == "record" || name == "record_vs_paper" || name == "record_text";
}

std::string taint_desc(TaintKind kind, const std::string& detail) {
  switch (kind) {
    case TaintKind::kPointerIdentity: return detail;
    case TaintKind::kThreadIdentity: return detail;
    case TaintKind::kUnorderedOrder: return detail;
  }
  return detail;
}

/// Deterministic fingerprint of a summary, for fixpoint change detection.
std::string signature(const FunctionSummary& s) {
  std::string sig;
  const auto add = [&sig](const std::string& part) {
    sig += part;
    sig += '\x1f';
  };
  for (const TaintSource& t : s.ret.taints) {
    add(std::to_string(static_cast<int>(t.kind)) + t.desc + t.file + std::to_string(t.line));
    for (const std::string& v : t.via) add(v);
  }
  for (const int p : s.ret.params) add(std::to_string(p));
  if (s.ret.units != nullptr) add(std::string{s.ret.units->dim} + s.ret.units->unit);
  add(std::to_string(s.ret.units_cross_function));
  for (const ParamSink& p : s.param_sinks) {
    add(std::to_string(p.param) + p.sink + p.file + std::to_string(p.line));
    for (const std::string& v : p.via) add(v);
  }
  for (const ParamAccum& p : s.fp_accum_params) {
    add(std::to_string(p.param) + p.file + std::to_string(p.line));
    for (const std::string& v : p.via) add(v);
  }
  for (const ParamUnits& p : s.param_units) {
    if (p.units == nullptr && !p.conflict) continue;
    add(std::to_string(p.conflict) + (p.units != nullptr ? p.units->unit : "") + p.desc);
  }
  return sig;
}

/// Per-file derived facts computed once, outside the fixpoint loop.
struct FileFacts {
  /// Identifiers declared with double/float anywhere in the file. Lambdas
  /// cannot see their enclosing function's symbol table (they are walked as
  /// separate nodes), so capture fp-ness comes from this file-level scan.
  std::set<std::string> fp_names;
  /// Identifiers declared with an unordered_* container type (locals, members,
  /// parameters and functions returning unordered references all count).
  std::set<std::string> unordered_names;
  /// Parallel-lambda body token ranges: the enclosing function's walk skips
  /// these so each region is analyzed exactly once, by its own node.
  std::vector<std::pair<std::size_t, std::size_t>> lambda_ranges;
};

FileFacts collect_file_facts(const FileIndex& file) {
  FileFacts facts;
  const Tokens& toks = file.tokens;
  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (toks[k].kind != TokKind::kIdent) continue;
    const std::string& t = toks[k].text;
    if (t == "double" || t == "float") {
      std::size_t j = k + 1;
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "&&" ||
              toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) facts.fp_names.insert(toks[j].text);
      continue;
    }
    if (t.starts_with("unordered_")) {
      std::size_t j = k + 1;
      if (j < toks.size() && toks[j].text == "<") {
        int angle = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].text == "<") ++angle;
          if (toks[j].text == ">") --angle;
          if (toks[j].text == ">>") angle -= 2;
          if (angle <= 0) break;
        }
        ++j;
      }
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
        facts.unordered_names.insert(toks[j].text);
      }
    }
  }
  for (const FunctionDef& fn : file.functions) {
    if (fn.is_parallel_lambda && fn.body_close > fn.body_open) {
      facts.lambda_ranges.emplace_back(fn.body_open, fn.body_close);
    }
  }
  return facts;
}

/// One walk of one function body: builds the summary and (in the emission
/// pass) the events. Everything is value semantics; a walk never mutates
/// another node's summary.
class Walker {
 public:
  Walker(const CallGraph& graph, const std::vector<FunctionSummary>& summaries,
         const std::vector<FileFacts>& facts_by_file,
         const std::map<const FileIndex*, std::size_t>& file_of, std::size_t node,
         std::vector<DataflowEvent>* events)
      : graph_{graph},
        summaries_{summaries},
        events_{events},
        node_{node},
        fn_{graph.nodes[node].def},
        file_{graph.nodes[node].file},
        toks_{graph.nodes[node].file->tokens},
        facts_{facts_by_file[file_of.at(graph.nodes[node].file)]} {
    for (const std::size_t e : graph.out_edges[node]) {
      const CallGraph::Edge& edge = graph.edges[e];
      targets_[{edge.site->line, edge.site->col}].push_back(edge.callee);
    }
    sum_.param_units.resize(fn_->params.size());
    for (std::size_t p = 0; p < fn_->params.size(); ++p) {
      const ParamInfo& info = fn_->params[p];
      if (info.name.empty()) continue;
      VarState st;
      st.val.add_param(static_cast<int>(p));
      st.val.fp = info.is_fp;
      st.depth = 0;
      vars_.emplace(info.name, std::move(st));
    }
  }

  FunctionSummary run() {
    if (fn_->body_close <= fn_->body_open) return std::move(sum_);
    walk_range(fn_->body_open + 1, fn_->body_close);
    sum_.analyzed = true;
    return std::move(sum_);
  }

 private:
  struct VarState {
    Value val;
    int depth = 0;
  };
  struct EvalResult {
    Value val;
    int terms = 0;
    /// Set when the expression is one bare identifier (argument naming).
    std::string bare_name;
  };

  const CallGraph& graph_;
  const std::vector<FunctionSummary>& summaries_;
  std::vector<DataflowEvent>* events_;
  std::size_t node_;
  const FunctionDef* fn_;
  const FileIndex* file_;
  const Tokens& toks_;
  const FileFacts& facts_;
  std::map<std::pair<int, int>, std::vector<std::size_t>> targets_;
  std::map<std::string, VarState> vars_;
  FunctionSummary sum_;
  int depth_ = 0;

  /// Joins only the taint component (calls launder units; parameters are
  /// joined explicitly where a flow is actually known).
  static void join_taints(Value& dst, const Value& src) {
    for (const TaintSource& t : src.taints) dst.add_taint(t);
  }

  void emit(DataflowEvent ev) {
    if (events_ == nullptr) return;
    ev.file = file_;
    ev.fn = fn_;
    events_->push_back(std::move(ev));
  }

  [[nodiscard]] bool var_fp(const std::string& name) const {
    const auto it = vars_.find(name);
    if (it != vars_.end() && it->second.val.fp) return true;
    return facts_.fp_names.contains(name);
  }

  /// Is position i inside a parallel-lambda body that is not this node's own?
  [[nodiscard]] std::size_t skip_to_after_lambda(std::size_t i) const {
    for (const auto& [open, close] : facts_.lambda_ranges) {
      if (open == fn_->body_open) continue;  // our own body
      if (i == open && open > fn_->body_open && close < fn_->body_close) return close + 1;
    }
    return i;
  }

  /// End of the statement starting at s: index of its top-level ';' (or the
  /// body close). Balanced (), [] are skipped; a top-level '{' (brace init,
  /// lambda body) is jumped over wholesale.
  [[nodiscard]] std::size_t stmt_end(std::size_t s) const {
    int depth = 0;
    for (std::size_t k = s; k < fn_->body_close; ++k) {
      const std::string& t = toks_[k].text;
      if (t == "(" || t == "[") ++depth;
      if (t == ")" || t == "]") --depth;
      if (t == "{" && depth == 0) {
        const std::size_t close = match_forward(toks_, k);
        if (close >= toks_.size()) return fn_->body_close;
        k = close;
        continue;
      }
      if (t == ";" && depth <= 0) return k;
    }
    return fn_->body_close;
  }

  void kill_deeper_vars() {
    for (auto it = vars_.begin(); it != vars_.end();) {
      it = it->second.depth > depth_ ? vars_.erase(it) : std::next(it);
    }
  }

  void walk_range(std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    while (i < end) {
      const std::size_t skipped = skip_to_after_lambda(i);
      if (skipped != i) {
        i = skipped;
        continue;
      }
      const Token& t = toks_[i];
      if (t.text == "{") {
        ++depth_;
        ++i;
        continue;
      }
      if (t.text == "}") {
        --depth_;
        kill_deeper_vars();
        ++i;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        const std::string& kw = t.text;
        if (kw == "for") {
          i = handle_for(i);
          continue;
        }
        if (kw == "if" || kw == "while" || kw == "switch" || kw == "catch") {
          std::size_t open = i + 1;
          while (open < end && toks_[open].text != "(" && toks_[open].text != "{") ++open;
          if (open < end && toks_[open].text == "(") {
            const std::size_t close = match_forward(toks_, open);
            if (close < toks_.size()) {
              eval(open + 1, close);
              i = close + 1;
              continue;
            }
          }
          ++i;
          continue;
        }
        if (kw == "else" || kw == "do" || kw == "try") {
          ++i;
          continue;
        }
        if (kw == "return" || kw == "co_return") {
          const std::size_t e = stmt_end(i);
          if (e > i + 1) {
            EvalResult r = eval(i + 1, e);
            if (r.terms != 1) clear_units(r.val);
            sum_.ret.join(r.val);
          }
          i = e + 1;
          continue;
        }
        if (kw == "using" || kw == "typedef" || kw == "struct" || kw == "class" ||
            kw == "enum" || kw == "union" || kw == "static_assert" || kw == "goto" ||
            kw == "break" || kw == "continue" || kw == "case" || kw == "default") {
          i = stmt_end(i) + 1;
          continue;
        }
      }
      const std::size_t e = stmt_end(i);
      handle_statement(i, e);
      i = e + 1;
    }
  }

  /// Range-for seeds loop variables from the base sequence (plus an
  /// unordered-iteration taint when the base is a hash container); a classic
  /// for just evaluates its header for call effects.
  std::size_t handle_for(std::size_t i) {
    std::size_t open = i + 1;
    if (open >= fn_->body_close || toks_[open].text != "(") return i + 1;
    const std::size_t close = match_forward(toks_, open);
    if (close >= toks_.size()) return i + 1;
    // Find a top-level ':' between the parens (range-for). '::' is a distinct
    // token, so a bare ':' is unambiguous.
    std::size_t colon = 0;
    int d = 0;
    for (std::size_t k = open + 1; k < close; ++k) {
      const std::string& t = toks_[k].text;
      if (t == "(" || t == "[" || t == "{" || t == "<") ++d;
      if (t == ")" || t == "]" || t == "}" || t == ">") --d;
      if (t == ":" && d == 0) {
        colon = k;
        break;
      }
      if (t == ";" && d == 0) break;  // classic for
    }
    if (colon == 0) {
      eval(open + 1, close);
      return close + 1;
    }
    // Loop variable names: structured-binding idents, else the last declared
    // identifier before the colon.
    std::vector<std::string> loop_vars;
    bool fp = false;
    for (std::size_t k = open + 1; k < colon; ++k) {
      if (toks_[k].text == "double" || toks_[k].text == "float") fp = true;
      if (toks_[k].text == "[") {
        for (std::size_t j = k + 1; j < colon && toks_[j].text != "]"; ++j) {
          if (toks_[j].kind == TokKind::kIdent) loop_vars.push_back(toks_[j].text);
        }
        break;
      }
    }
    if (loop_vars.empty()) {
      for (std::size_t k = colon; k > open + 1;) {
        --k;
        if (toks_[k].kind == TokKind::kIdent) {
          loop_vars.push_back(toks_[k].text);
          break;
        }
      }
    }
    EvalResult base = eval(colon + 1, close);
    // A hash-ordered base poisons everything drawn from the iteration.
    std::string unordered_name;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (toks_[k].kind != TokKind::kIdent) continue;
      if (facts_.unordered_names.contains(toks_[k].text) ||
          toks_[k].text.starts_with("unordered_")) {
        unordered_name = toks_[k].text;
        break;
      }
    }
    Value seed = base.val;
    clear_units(seed);
    seed.fp = seed.fp || fp;
    if (!unordered_name.empty()) {
      TaintSource src;
      src.kind = TaintKind::kUnorderedOrder;
      src.desc = taint_desc(src.kind,
                            "iteration order of unordered container '" + unordered_name + "'");
      src.file = file_->rel;
      src.line = toks_[colon].line;
      seed.add_taint(std::move(src));
    }
    for (const std::string& name : loop_vars) {
      VarState st;
      st.val = seed;
      st.depth = depth_ + 1;  // scoped to the loop body
      vars_[name] = std::move(st);
    }
    return close + 1;
  }

  static void clear_units(Value& v) {
    v.units = nullptr;
    v.units_cross_function = false;
    v.units_desc.clear();
    v.units_file.clear();
    v.units_line = 0;
    v.units_via.clear();
  }

  /// Declaration / assignment / compound-assignment / expression statement.
  void handle_statement(std::size_t s, std::size_t e) {
    // First top-level assignment operator.
    std::size_t q = 0;
    int d = 0;
    for (std::size_t k = s; k < e; ++k) {
      const std::string& t = toks_[k].text;
      if (t == "(" || t == "[") ++d;
      if (t == ")" || t == "]") --d;
      if (t == "{" && d == 0) {
        const std::size_t close = match_forward(toks_, k);
        if (close >= toks_.size()) break;
        k = close;
        continue;
      }
      if (d == 0 && (t == "=" || is_compound_assign(t))) {
        q = k;
        break;
      }
    }
    if (q == 0) {
      // Uninitialized declaration: `Type name ;` with no call parens.
      if (e > s + 1 && toks_[e - 1].kind == TokKind::kIdent && is_typeish(toks_[e - 2])) {
        bool has_paren = false;
        bool fp = false;
        int angle = 0;
        for (std::size_t k = s; k + 1 < e; ++k) {
          if (toks_[k].text == "(") has_paren = true;
          if (toks_[k].text == "<") ++angle;
          if (toks_[k].text == ">") --angle;
          if (angle == 0 && (toks_[k].text == "double" || toks_[k].text == "float")) fp = true;
        }
        if (!has_paren && e - 1 > s) {
          VarState st;
          st.val.fp = fp;
          st.depth = depth_;
          vars_[toks_[e - 1].text] = std::move(st);
          return;
        }
      }
      eval(s, e);
      return;
    }

    const std::string& op = toks_[q].text;
    if (op == "=") {
      EvalResult rhs = eval(q + 1, e);
      if (rhs.terms != 1) clear_units(rhs.val);
      // Declaration: `Type name = rhs` — the name is directly before '=' with
      // a type-ish token before it.
      if (q >= s + 2 && toks_[q - 1].kind == TokKind::kIdent && is_typeish(toks_[q - 2])) {
        bool fp = false;
        int angle = 0;
        for (std::size_t k = s; k < q - 1; ++k) {
          if (toks_[k].text == "<") ++angle;
          if (toks_[k].text == ">") --angle;
          if (angle == 0 && (toks_[k].text == "double" || toks_[k].text == "float")) fp = true;
        }
        VarState st;
        st.val = std::move(rhs.val);
        st.val.fp = st.val.fp || fp;
        st.depth = depth_;
        vars_[toks_[q - 1].text] = std::move(st);
        return;
      }
      // Plain assignment to a tracked bare name: kill + gen.
      if (q == s + 1 && toks_[s].kind == TokKind::kIdent) {
        const auto it = vars_.find(toks_[s].text);
        if (it != vars_.end()) {
          const bool fp = it->second.val.fp;
          it->second.val = std::move(rhs.val);
          it->second.val.fp = it->second.val.fp || fp;
        }
        return;
      }
      // Member / subscript target: RHS effects only.
      eval(s, q);
      return;
    }

    // Compound assignment.
    EvalResult rhs = eval(q + 1, e);
    if (toks_[q - 1].text == "]") return;  // out[i] += x — indexed slot, legal
    if (toks_[q - 1].kind != TokKind::kIdent) return;
    // Walk a member chain back to its base identifier.
    std::size_t base = q - 1;
    while (base >= 2 && is_member_access(toks_[base - 1].text) &&
           toks_[base - 2].kind == TokKind::kIdent) {
      base -= 2;
    }
    if (base >= 1 && is_member_access(toks_[base - 1].text)) return;  // f().x += — untracked
    const std::string& name = toks_[base].text;
    const bool fp = var_fp(name) || rhs.val.fp;
    const auto it = vars_.find(name);
    if (fn_->is_parallel_lambda && fp && it == vars_.end()) {
      // A captured fp accumulator mutated in a parallel region: the merge
      // order is the scheduler's, not the chunk discipline's.
      DataflowEvent ev;
      ev.kind = DataflowEvent::Kind::kFpSharedAccum;
      ev.line = toks_[base].line;
      ev.col = toks_[base].col;
      ev.token_len = name.size();
      ev.target = name;
      emit(std::move(ev));
    }
    if (!fn_->is_parallel_lambda && it != vars_.end() && fp) {
      // Accumulating into a by-ref fp parameter: callers inside parallel
      // regions inherit the hazard through the summary.
      for (const int p : it->second.val.params) {
        const std::size_t pi = static_cast<std::size_t>(p);
        if (pi < fn_->params.size() && fn_->params[pi].by_ref && fn_->params[pi].is_fp) {
          record_fp_accum(p, file_->rel, toks_[base].line, {});
        }
      }
    }
    if (it != vars_.end()) it->second.val.join(rhs.val);
  }

  void record_fp_accum(int param, const std::string& file, int line,
                       std::vector<std::string> via) {
    for (const ParamAccum& a : sum_.fp_accum_params) {
      if (a.param == param) return;  // first wins
    }
    sum_.fp_accum_params.push_back({param, file, line, std::move(via)});
  }

  void record_param_sink(int param, const std::string& sink, const std::string& file, int line,
                         std::vector<std::string> via) {
    for (const ParamSink& p : sum_.param_sinks) {
      if (p.param == param && p.sink == sink) return;
    }
    sum_.param_sinks.push_back({param, sink, file, line, std::move(via)});
  }

  void record_param_units(int param, const UnitDim* units, const std::string& desc,
                          const std::string& file, int line, std::vector<std::string> via) {
    const std::size_t pi = static_cast<std::size_t>(param);
    if (pi >= sum_.param_units.size() || units == nullptr) return;
    ParamUnits& slot = sum_.param_units[pi];
    if (slot.conflict) return;
    if (slot.units == nullptr) {
      slot.units = units;
      slot.desc = desc;
      slot.file = file;
      slot.line = line;
      slot.via = std::move(via);
      return;
    }
    if (slot.units != units) {
      slot.units = nullptr;
      slot.conflict = true;  // disagreeing uses: make no claim
    }
  }

  /// Expression evaluation over [s, e): joins the values of every operand,
  /// counts top-level terms (a units tag survives only a single-term
  /// expression), dispatches calls, and runs the units mixing scan.
  EvalResult eval(std::size_t s, std::size_t e) {
    EvalResult res;
    std::size_t ident_count = 0;
    std::string only_ident;
    for (std::size_t k = s; k < e; ++k) {
      const Token& t = toks_[k];
      if (t.text == "{") {  // brace init / lambda body: skip wholesale
        const std::size_t close = match_forward(toks_, k);
        if (close >= toks_.size()) break;
        k = close;
        ++res.terms;
        continue;
      }
      if (t.kind == TokKind::kNumber) {
        ++res.terms;
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      const std::string& name = t.text;
      // Qualifier segment of a qualified name: not an operand.
      if (k + 1 < e && toks_[k + 1].text == "::") continue;
      if (name == "this") {
        if (k + 1 >= e || (!is_member_access(toks_[k + 1].text))) {
          TaintSource src;
          src.kind = TaintKind::kPointerIdentity;
          src.desc = "address of 'this' used as a value";
          src.file = file_->rel;
          src.line = t.line;
          res.val.add_taint(std::move(src));
          ++res.terms;
        }
        continue;
      }
      if (name == "reinterpret_cast" && k + 1 < e && toks_[k + 1].text == "<") {
        std::size_t close_angle = k + 1;
        int angle = 0;
        for (; close_angle < e; ++close_angle) {
          if (toks_[close_angle].text == "<") ++angle;
          if (toks_[close_angle].text == ">") --angle;
          if (toks_[close_angle].text == ">>") angle -= 2;
          if (angle <= 0 && close_angle > k + 1) break;
        }
        const bool to_int = integer_cast_target(toks_, k + 2, close_angle);
        if (close_angle + 1 < e && toks_[close_angle + 1].text == "(") {
          const std::size_t arg_close = match_forward(toks_, close_angle + 1);
          if (arg_close < toks_.size()) {
            EvalResult arg = eval(close_angle + 2, arg_close);
            res.val.join(arg.val);
            if (to_int) {
              TaintSource src;
              src.kind = TaintKind::kPointerIdentity;
              src.desc = "reinterpret_cast of a pointer to an integer";
              src.file = file_->rel;
              src.line = t.line;
              res.val.add_taint(std::move(src));
            }
            ++res.terms;
            k = arg_close;
            continue;
          }
        }
        k = close_angle;
        continue;
      }
      if ((name == "static_cast" || name == "const_cast" || name == "dynamic_cast") &&
          k + 1 < e && toks_[k + 1].text == "<") {
        int angle = 0;
        for (; k < e; ++k) {
          if (toks_[k].text == "<") ++angle;
          if (toks_[k].text == ">") --angle;
          if (toks_[k].text == ">>") angle -= 2;
          if (angle <= 0 && toks_[k].text != "static_cast" && toks_[k].text != "const_cast" &&
              toks_[k].text != "dynamic_cast") {
            break;
          }
        }
        continue;  // the parenthesized operand evaluates as grouping
      }
      if (name == "hash" && k + 1 < e && toks_[k + 1].text == "<") {
        std::size_t close_angle = k + 1;
        int angle = 0;
        bool pointer_arg = false;
        for (; close_angle < e; ++close_angle) {
          if (toks_[close_angle].text == "<") ++angle;
          if (toks_[close_angle].text == ">") --angle;
          if (toks_[close_angle].text == ">>") angle -= 2;
          if (toks_[close_angle].text == "*") pointer_arg = true;
          if (angle <= 0 && close_angle > k + 1) break;
        }
        if (pointer_arg) {
          TaintSource src;
          src.kind = TaintKind::kPointerIdentity;
          src.desc = "std::hash of a pointer";
          src.file = file_->rel;
          src.line = t.line;
          res.val.add_taint(std::move(src));
        }
        ++res.terms;
        k = close_angle;
        continue;
      }
      if (k + 1 < e && toks_[k + 1].text == "(") {
        const bool member = k > s && is_member_access(toks_[k - 1].text);
        std::size_t after = 0;
        Value call_val = handle_call(k, member, after);
        res.val.join(call_val);
        ++res.terms;
        if (after > k) {
          k = after;
          continue;
        }
        continue;
      }
      if (k > s && is_member_access(toks_[k - 1].text)) continue;  // member name
      // Bare identifier operand.
      ++ident_count;
      only_ident = name;
      const auto it = vars_.find(name);
      if (it != vars_.end()) res.val.join(it->second.val);
      ++res.terms;
      mixing_scan(k);
    }
    if (ident_count == 1 && res.terms == 1) res.bare_name = only_ident;
    return res;
  }

  /// `a <op> b` over two bare tracked identifiers: report cross-function unit
  /// disagreements and learn parameter unit expectations.
  void mixing_scan(std::size_t k) {
    if (k + 2 >= fn_->body_close) return;
    const std::string& op = toks_[k + 1].text;
    if (op != "+" && op != "-" && !is_comparison(op)) return;
    const Token& rhs = toks_[k + 2];
    if (rhs.kind != TokKind::kIdent) return;
    if (k + 3 < fn_->body_close) {
      const std::string& after = toks_[k + 3].text;
      if (after == "(" || after == "[" || after == "." || after == "->" || after == "::") return;
    }
    const auto a = vars_.find(toks_[k].text);
    const auto b = vars_.find(rhs.text);
    const Value* va = a != vars_.end() ? &a->second.val : nullptr;
    const Value* vb = b != vars_.end() ? &b->second.val : nullptr;
    if (va == nullptr || vb == nullptr) return;
    if (va->units != nullptr && vb->units != nullptr) {
      if (va->units != vb->units && (va->units_cross_function || vb->units_cross_function)) {
        DataflowEvent ev;
        ev.kind = DataflowEvent::Kind::kUnitsMix;
        ev.line = toks_[k].line;
        ev.col = toks_[k].col;
        ev.token_len = toks_[k].text.size();
        ev.target = toks_[k].text;
        ev.other = rhs.text;
        ev.have = va->units;
        ev.have_desc = va->units_desc;
        ev.have_file = va->units_file;
        ev.have_line = va->units_line;
        ev.have_via = va->units_via;
        ev.have_cross = va->units_cross_function;
        ev.want = vb->units;
        ev.want_desc = vb->units_desc;
        emit(std::move(ev));
      }
      return;
    }
    // One side tagged, the other a pure raw parameter: the parameter is
    // expected to carry the tagged side's unit.
    const auto learn = [this](const Value* tagged, const Value* raw) {
      if (tagged->units == nullptr || raw->units != nullptr || raw->units_conflict) return;
      if (raw->params.empty() || !raw->taints.empty()) return;
      for (const int p : raw->params) {
        record_param_units(p, tagged->units, tagged->units_desc, tagged->units_file,
                           tagged->units_line, tagged->units_via);
      }
    };
    learn(va, vb);
    learn(vb, va);
  }

  /// A call expression: sources, sinks, factories, and summary application.
  /// `k` is the callee name token; `after` receives the index of the ')'.
  Value handle_call(std::size_t k, bool member, std::size_t& after) {
    Value result;
    const std::string& name = toks_[k].text;
    // Qualifier chain (tokens `a :: b :: name`).
    std::string qualifier;
    for (std::size_t q = k; q >= 2 && toks_[q - 1].text == "::" &&
                            toks_[q - 2].kind == TokKind::kIdent;) {
      qualifier = qualifier.empty() ? toks_[q - 2].text : toks_[q - 2].text + "::" + qualifier;
      q -= 2;
    }
    const std::size_t open = k + 1;
    const std::size_t close = match_forward(toks_, open);
    after = close < toks_.size() ? close : k;
    if (close >= toks_.size()) return result;

    // Argument ranges at top-level commas.
    std::vector<std::pair<std::size_t, std::size_t>> arg_ranges;
    {
      std::size_t a = open + 1;
      int d = 0;
      for (std::size_t j = open + 1; j <= close; ++j) {
        const std::string& t = toks_[j].text;
        if (t == "(" || t == "[" || t == "{") ++d;
        if (t == ")" || t == "]" || t == "}") --d;
        if ((t == "," && d == 0) || j == close) {
          if (j > a) arg_ranges.emplace_back(a, j);
          a = j + 1;
        }
      }
    }
    std::vector<EvalResult> args;
    args.reserve(arg_ranges.size());
    for (const auto& [as, ae] : arg_ranges) {
      EvalResult r = eval(as, ae);
      if (r.terms != 1) clear_units(r.val);
      args.push_back(std::move(r));
    }

    // Intrinsic sources.
    if (const UnitDim* tag = unwrap_accessor(name); tag != nullptr) {
      for (const EvalResult& a : args) join_taints(result, a.val);
      result.units = tag;
      result.units_desc = name;
      result.units_file = file_->rel;
      result.units_line = toks_[k].line;
      return result;
    }
    if (thread_identity_call(name, qualifier)) {
      TaintSource src;
      src.kind = TaintKind::kThreadIdentity;
      src.desc = "thread-identity API '" + (qualifier.empty() ? name : qualifier + "::" + name) +
                 "()'";
      src.file = file_->rel;
      src.line = toks_[k].line;
      result.add_taint(std::move(src));
      return result;
    }

    // Sinks: manifest record calls and cache-key-annotated call lines.
    std::string sink;
    if (member && manifest_sink(name)) sink = "RunManifest::" + name;
    if (sink.empty() && file_->cache_key_at(toks_[k].line)) {
      sink = "cache-key computation ('" + name + "', annotated ppatc: cache-key)";
    }
    if (!sink.empty()) {
      for (std::size_t ai = 0; ai < args.size(); ++ai) {
        for (const TaintSource& taint : args[ai].val.taints) {
          DataflowEvent ev;
          ev.kind = DataflowEvent::Kind::kTaintSink;
          ev.line = toks_[k].line;
          ev.col = toks_[k].col;
          ev.token_len = name.size();
          ev.taint = taint;
          ev.sink = sink;
          ev.target = args[ai].bare_name;
          emit(std::move(ev));
        }
        for (const int p : args[ai].val.params) {
          record_param_sink(p, sink, file_->rel, toks_[k].line, {});
        }
      }
    }

    // Units factory: wrong-tag re-wrap and parameter expectations.
    if (const UnitDim* fac = unit_factory(name);
        fac != nullptr && (qualifier.empty() || qualifier == "units" ||
                           qualifier.ends_with("::units"))) {
      for (const EvalResult& a : args) {
        if (a.val.units != nullptr && a.val.units != fac && a.val.units_cross_function) {
          DataflowEvent ev;
          ev.kind = DataflowEvent::Kind::kUnitsFactory;
          ev.line = toks_[k].line;
          ev.col = toks_[k].col;
          ev.token_len = name.size();
          ev.target = a.bare_name;
          ev.have = a.val.units;
          ev.have_desc = a.val.units_desc;
          ev.have_file = a.val.units_file;
          ev.have_line = a.val.units_line;
          ev.have_via = a.val.units_via;
          ev.have_cross = true;
          ev.want = fac;
          ev.want_desc = "units::" + name + "()";
          emit(std::move(ev));
        }
        if (a.val.units == nullptr && !a.val.units_conflict && a.val.taints.empty()) {
          for (const int p : a.val.params) {
            record_param_units(p, fac, "units::" + name + "()", file_->rel, toks_[k].line, {});
          }
        }
        join_taints(result, a.val);
        for (const int p : a.val.params) result.add_param(p);
      }
      return result;
    }

    // Resolved callees: apply their summaries.
    const auto targets = targets_.find({toks_[k].line, toks_[k].col});
    if (targets == targets_.end()) {
      // Unresolved: conservatively pass taints and parameter flows through
      // (functional casts, std::move, std::to_string...), drop unit tags.
      for (const EvalResult& a : args) {
        join_taints(result, a.val);
        for (const int p : a.val.params) result.add_param(p);
      }
      return result;
    }
    for (const std::size_t callee : targets->second) {
      const FunctionSummary& cs = summaries_[callee];
      if (!cs.analyzed) continue;
      const std::string& callee_qname = graph_.nodes[callee].def->qname;
      for (const TaintSource& t : cs.ret.taints) {
        TaintSource via = t;
        via.via.insert(via.via.begin(), callee_qname);
        result.add_taint(std::move(via));
      }
      for (const int p : cs.ret.params) {
        const std::size_t pi = static_cast<std::size_t>(p);
        if (pi < args.size()) {
          join_taints(result, args[pi].val);
          for (const int cp : args[pi].val.params) result.add_param(cp);
        }
      }
      if (cs.ret.units != nullptr && result.units == nullptr && !result.units_conflict) {
        result.units = cs.ret.units;
        result.units_cross_function = true;
        result.units_desc = cs.ret.units_desc;
        result.units_file = cs.ret.units_file;
        result.units_line = cs.ret.units_line;
        result.units_via = cs.ret.units_via;
        result.units_via.insert(result.units_via.begin(), callee_qname);
      }
      for (const ParamSink& ps : cs.param_sinks) {
        const std::size_t pi = static_cast<std::size_t>(ps.param);
        if (pi >= args.size()) continue;
        std::vector<std::string> via{callee_qname};
        via.insert(via.end(), ps.via.begin(), ps.via.end());
        for (const TaintSource& taint : args[pi].val.taints) {
          DataflowEvent ev;
          ev.kind = DataflowEvent::Kind::kTaintSink;
          ev.line = toks_[k].line;
          ev.col = toks_[k].col;
          ev.token_len = name.size();
          ev.taint = taint;
          ev.sink = ps.sink;
          ev.via = via;
          ev.target = args[pi].bare_name;
          ev.helper_file = ps.file;
          ev.helper_line = ps.line;
          emit(std::move(ev));
        }
        for (const int p : args[pi].val.params) {
          record_param_sink(p, ps.sink, ps.file, ps.line, via);
        }
      }
      for (const ParamAccum& pa : cs.fp_accum_params) {
        const std::size_t pi = static_cast<std::size_t>(pa.param);
        if (pi >= args.size() || args[pi].bare_name.empty()) continue;
        const std::string& arg_name = args[pi].bare_name;
        std::vector<std::string> via{callee_qname};
        via.insert(via.end(), pa.via.begin(), pa.via.end());
        if (fn_->is_parallel_lambda && var_fp(arg_name) && !vars_.contains(arg_name)) {
          DataflowEvent ev;
          ev.kind = DataflowEvent::Kind::kFpHelperAccum;
          ev.line = toks_[k].line;
          ev.col = toks_[k].col;
          ev.token_len = name.size();
          ev.target = arg_name;
          ev.helper = callee_qname;
          ev.helper_file = pa.file;
          ev.helper_line = pa.line;
          ev.via = via;
          emit(std::move(ev));
        } else if (!fn_->is_parallel_lambda) {
          const auto it = vars_.find(arg_name);
          if (it != vars_.end()) {
            for (const int p : it->second.val.params) {
              const std::size_t opi = static_cast<std::size_t>(p);
              if (opi < fn_->params.size() && fn_->params[opi].by_ref &&
                  fn_->params[opi].is_fp) {
                record_fp_accum(p, pa.file, pa.line, via);
              }
            }
          }
        }
      }
      for (std::size_t pi = 0; pi < cs.param_units.size() && pi < args.size(); ++pi) {
        const ParamUnits& pu = cs.param_units[pi];
        if (pu.units == nullptr || pu.conflict) continue;
        const Value& av = args[pi].val;
        if (av.units != nullptr && av.units != pu.units) {
          DataflowEvent ev;
          ev.kind = DataflowEvent::Kind::kUnitsParam;
          ev.line = toks_[k].line;
          ev.col = toks_[k].col;
          ev.token_len = name.size();
          ev.target = args[pi].bare_name;
          ev.helper = callee_qname;
          ev.helper_file = pu.file;
          ev.helper_line = pu.line;
          ev.have = av.units;
          ev.have_desc = av.units_desc;
          ev.have_file = av.units_file;
          ev.have_line = av.units_line;
          ev.have_via = av.units_via;
          ev.have_cross = av.units_cross_function;
          ev.want = pu.units;
          ev.want_desc = pu.desc;
          emit(std::move(ev));
        } else if (av.units == nullptr && !av.units_conflict && av.taints.empty()) {
          std::vector<std::string> via{callee_qname};
          via.insert(via.end(), pu.via.begin(), pu.via.end());
          for (const int p : av.params) {
            record_param_units(p, pu.units, pu.desc, pu.file, pu.line, via);
          }
        }
      }
    }
    return result;
  }
};

}  // namespace

DataflowResult compute_dataflow(const std::vector<FileIndex>& files, const CallGraph& graph) {
  DataflowResult result;
  result.summaries.resize(graph.nodes.size());
  if (graph.nodes.empty()) return result;

  std::map<const FileIndex*, std::size_t> file_of;
  std::vector<FileFacts> facts;
  facts.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    file_of.emplace(&files[i], i);
    facts.push_back(collect_file_facts(files[i]));
  }

  constexpr std::size_t kMaxIterations = 10;
  std::vector<std::string> sigs(graph.nodes.size());
  for (std::size_t iter = 1; iter <= kMaxIterations; ++iter) {
    bool changed = false;
    for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
      Walker walker{graph, result.summaries, facts, file_of, n, nullptr};
      FunctionSummary next = walker.run();
      std::string sig = signature(next);
      if (sig != sigs[n]) {
        changed = true;
        sigs[n] = std::move(sig);
      }
      result.summaries[n] = std::move(next);
    }
    result.fixpoint_iterations = iter;
    if (!changed) break;
  }

  // Emission pass: the summaries are converged, so events are final and in
  // deterministic node/token order.
  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    Walker walker{graph, result.summaries, facts, file_of, n, &result.events};
    (void)walker.run();
  }
  for (const FunctionSummary& s : result.summaries) {
    if (s.nontrivial()) ++result.summaries_computed;
  }
  return result;
}

}  // namespace ppatc::lint
