#include "lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <regex>
#include <sstream>

namespace ppatc::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

FileText split_and_strip(const std::string& contents) {
  FileText out;
  std::string line;
  std::istringstream is{contents};
  bool in_block_comment = false;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string code = line;
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      const char next = i + 1 < code.size() ? code[i + 1] : '\0';
      if (in_block_comment) {
        if (c == '*' && next == '/') {
          code[i] = ' ';
          code[i + 1] = ' ';
          ++i;
          in_block_comment = false;
        } else {
          code[i] = ' ';
        }
      } else if (in_string || in_char) {
        const char quote = in_string ? '"' : '\'';
        if (c == '\\') {
          code[i] = ' ';
          if (i + 1 < code.size()) code[++i] = ' ';
        } else if (c == quote) {
          in_string = in_char = false;
        } else {
          code[i] = ' ';
        }
      } else if (c == '/' && next == '/') {
        for (std::size_t j = i; j < code.size(); ++j) code[j] = ' ';
        break;
      } else if (c == '/' && next == '*') {
        code[i] = ' ';
        code[i + 1] = ' ';
        ++i;
        in_block_comment = true;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '\'' && (i == 0 || !is_ident_char(code[i - 1]))) {
        // Identifier-adjacent apostrophes are digit separators (1'000'000).
        in_char = true;
      }
    }
    out.raw.push_back(line);
    out.code.push_back(code);
  }
  return out;
}

namespace {

// Longest-match-first multi-character punctuators. Everything else is a
// single-character punct token.
constexpr std::array<const char*, 24> kPuncts3{
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "&&", "||", "++", "--", "<<", ">>",
};

}  // namespace

std::vector<Token> tokenize(const FileText& text) {
  std::vector<Token> tokens;
  for (std::size_t li = 0; li < text.code.size(); ++li) {
    const std::string& line = text.code[li];
    const int lineno = static_cast<int>(li + 1);
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] == '#') continue;  // preprocessor directive
    while (i < line.size()) {
      const char c = line[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::size_t j = i + 1;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        tokens.push_back(
            {TokKind::kIdent, line.substr(i, j - i), lineno, static_cast<int>(i + 1)});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && i + 1 < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i + 1])) != 0)) {
        std::size_t j = i + 1;
        while (j < line.size() &&
               (is_ident_char(line[j]) || line[j] == '.' ||
                ((line[j] == '+' || line[j] == '-') &&
                 (line[j - 1] == 'e' || line[j - 1] == 'E' || line[j - 1] == 'p' ||
                  line[j - 1] == 'P')))) {
          ++j;
        }
        tokens.push_back(
            {TokKind::kNumber, line.substr(i, j - i), lineno, static_cast<int>(i + 1)});
        i = j;
        continue;
      }
      bool matched = false;
      for (const char* p : kPuncts3) {
        const std::size_t n = std::char_traits<char>::length(p);
        if (line.compare(i, n, p) == 0) {
          tokens.push_back({TokKind::kPunct, p, lineno, static_cast<int>(i + 1)});
          i += n;
          matched = true;
          break;
        }
      }
      if (!matched) {
        tokens.push_back({TokKind::kPunct, std::string(1, c), lineno, static_cast<int>(i + 1)});
        ++i;
      }
    }
  }
  return tokens;
}

std::vector<Include> extract_includes(const std::vector<std::string>& raw) {
  static const std::regex re{R"(^\s*#\s*include\s*([<"])([^">]+)[">])"};
  std::vector<Include> out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(raw[i], m, re)) continue;
    out.push_back({m[2].str(), m[1].str() == "<", static_cast<int>(i + 1)});
  }
  return out;
}

std::vector<std::vector<std::string>> allowed_rules_per_line(
    const std::vector<std::string>& raw) {
  static const std::regex re{R"(ppatc-lint:\s*allow\(([A-Za-z0-9_, -]+)\))"};
  std::vector<std::vector<std::string>> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(raw[i], m, re)) continue;
    std::string rules = m[1].str();
    std::replace(rules.begin(), rules.end(), ',', ' ');
    std::istringstream is{rules};
    std::string r;
    while (is >> r) out[i].push_back(r);
  }
  return out;
}

bool is_rule_allowed(const std::vector<std::vector<std::string>>& allowed,
                     std::size_t line_index, const std::string& rule) {
  const auto has = [&](std::size_t i) {
    for (const std::string& r : allowed[i]) {
      if (r == rule) return true;
      // "realtime" is the documented shorthand for the realtime-purity rule.
      if (rule == "realtime-purity" && r == "realtime") return true;
    }
    return false;
  };
  if (line_index < allowed.size() && has(line_index)) return true;
  return line_index > 0 && line_index - 1 < allowed.size() && has(line_index - 1);
}

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open_index) {
  if (open_index >= tokens.size()) return tokens.size();
  const std::string& open = tokens[open_index].text;
  const char close = open == "(" ? ')' : open == "[" ? ']' : '}';
  int depth = 0;
  for (std::size_t i = open_index; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t.size() != 1) continue;
    if (t[0] == open[0]) ++depth;
    if (t[0] == close && --depth == 0) return i;
  }
  return tokens.size();
}

}  // namespace ppatc::lint
