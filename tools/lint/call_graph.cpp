#include "call_graph.hpp"

#include <algorithm>
#include <sstream>

namespace ppatc::lint {

std::size_t CallGraph::node_of(const FunctionDef* def) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].def == def) return i;
  }
  return nodes.size();
}

namespace {

// Models C++ unqualified name lookup on scope strings: a definition in scope
// `target` is visible from a caller in scope `caller` iff `target` is a
// "::"-boundary prefix of `caller` (global scope "" is visible everywhere).
// Deliberate approximations: ADL and using-directives are NOT modeled — an
// unqualified cross-namespace call resolves to nothing and is recorded as an
// unresolved external instead of fanning out to every same-named definition.
bool scope_visible(const std::string& target, const std::string& caller) {
  if (target.empty() || target == caller) return true;
  return caller.size() > target.size() + 2 &&
         caller.compare(0, target.size(), target) == 0 &&
         caller.compare(target.size(), 2, "::") == 0;
}

}  // namespace

CallGraph build_call_graph(const std::vector<FileIndex>& files) {
  CallGraph g;
  for (const FileIndex& file : files) {
    for (const FunctionDef& fn : file.functions) {
      g.by_name[fn.name].push_back(g.nodes.size());
      g.nodes.push_back({&fn, &file});
    }
  }
  g.out_edges.resize(g.nodes.size());
  std::map<std::string, std::size_t> unresolved_names;
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    const std::string& caller_scope = g.nodes[n].def->scope;
    for (const CallSite& call : g.nodes[n].def->calls) {
      const auto it = g.by_name.find(call.name);
      std::size_t linked = 0;
      if (it != g.by_name.end()) {
        // Member calls (`x.f()`) and qualified calls (`a::b::f()`) keep the
        // full conservative fan-out: receiver types and namespace aliases are
        // invisible to the token stream. Unqualified free calls get scope
        // filtering — that is what real unqualified lookup does, and it kills
        // name-collision edges like `write(fd, ...)` -> RunManifest::write.
        for (const std::size_t target : it->second) {
          if (!call.member && call.qualifier.empty() &&
              !scope_visible(g.nodes[target].def->scope, caller_scope)) {
            continue;
          }
          g.out_edges[n].push_back(g.edges.size());
          g.edges.push_back({n, target, &call});
          ++linked;
        }
      }
      if (linked == 0) {
        ++unresolved_names[call.name];
        g.unresolved.push_back({n, &call});
      }
    }
  }
  g.distinct_unresolved = unresolved_names.size();
  return g;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string call_graph_to_json(const CallGraph& graph) {
  std::ostringstream os;
  os << "{\n  \"functions\": [\n";
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const CallGraph::Node& n = graph.nodes[i];
    os << "    {\"qname\": \"" << json_escape(n.def->qname) << "\", \"file\": \""
       << json_escape(n.file->rel) << "\", \"line\": " << n.def->line
       << ", \"noexcept\": " << (n.def->is_noexcept ? "true" : "false")
       << ", \"signal_safe\": " << (n.def->annotated_signal_safe ? "true" : "false")
       << ", \"parallel_lambda\": " << (n.def->is_parallel_lambda ? "true" : "false")
       << ", \"calls\": " << n.def->calls.size() << "}"
       << (i + 1 < graph.nodes.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"edges\": [\n";
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    os << "    [" << graph.edges[i].caller << ", " << graph.edges[i].callee << "]"
       << (i + 1 < graph.edges.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"unresolved\": [\n";
  // Aggregate by callee name: the per-site list is bulky and the rules only
  // care about names. std::map keys keep the dump deterministic.
  std::map<std::string, std::size_t> by_callee;
  for (const CallGraph::Unresolved& u : graph.unresolved) ++by_callee[u.site->name];
  std::size_t i = 0;
  for (const auto& [name, sites] : by_callee) {
    os << "    {\"name\": \"" << json_escape(name) << "\", \"sites\": " << sites << "}"
       << (++i < by_callee.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"summary\": {\"functions\": " << graph.nodes.size()
     << ", \"edges\": " << graph.edges.size()
     << ", \"unresolved_names\": " << graph.distinct_unresolved << "}\n}\n";
  return os.str();
}

}  // namespace ppatc::lint
