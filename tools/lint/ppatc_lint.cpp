// ppatc-lint driver: lints the project tree and exits nonzero on any
// unsuppressed violation. Registered as the `lint.ppatc_lint` ctest.
//
// Usage: ppatc_lint [--root <dir>] [--quiet]
//   --root   repository root (or any tree); if <dir>/src exists, exactly that
//            subtree is scanned. Default: current directory.
//   --quiet  print only the summary line, not per-finding details.
#include <cstring>
#include <iostream>
#include <string>

#include "lint_core.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::cerr << "usage: ppatc_lint [--root <dir>] [--quiet]\n";
      return 2;
    }
  }

  const ppatc::lint::Report report = ppatc::lint::run_lint(root);
  if (quiet) {
    std::cout << "ppatc-lint: " << report.files_scanned << " files, "
              << report.violation_count() << " violations, " << report.suppression_count()
              << " suppressed\n";
  } else {
    std::cout << ppatc::lint::format_report(report);
  }
  return report.clean() ? 0 : 1;
}
