// ppatc-lint driver: lints the project tree and exits nonzero on any
// violation that is neither suppressed in-source nor parked in the baseline.
// Registered as the `lint.ppatc_lint` and `lint.layering` ctests.
//
// Usage: ppatc_lint [--root <dir>] [--quiet] [--rules r1,r2]
//                   [--baseline <file>] [--write-baseline <file>]
//                   [--sarif <file>] [--threads <n>]
//                   [--dump-callgraph <file>] [--budget-ms <n>]
//                   [--explain <rule|all>]
//   --root            repository root (or any tree); if <dir>/src exists,
//                     exactly that subtree is scanned. Default: cwd.
//   --quiet           print only the summary line, not per-finding details.
//   --rules           comma-separated rule filter; default runs all rules.
//   --baseline        committed baseline of parked findings; stale entries
//                     (matching nothing) are themselves a failure.
//   --write-baseline  write the current violations as a baseline and exit 0
//                     (the escape hatch for landing a new rule on a dirty
//                     tree; each entry still needs a hand-written rationale).
//   --sarif           also write the report as SARIF 2.1.0 for code-scanning.
//   --threads         worker threads for the file-parallel scan (the
//                     analyzer dogfoods ppatc::runtime::parallel_for).
//                     When unset, the PPATC_THREADS environment variable is
//                     consulted; failing that, hardware concurrency.
//   --dump-callgraph  write the whole-repo call graph (functions, edges,
//                     unresolved externals, summary) as JSON.
//   --budget-ms       hard wall-time budget: exit nonzero if the analysis
//                     takes longer, even on a clean tree (CI enforces the
//                     <2 s @ 4 threads contract with this).
//   --explain         print a rule's rationale, an example finding and the
//                     suppression syntax, then exit without linting. Pass
//                     'all' to document every registered rule.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"
#include "ppatc/runtime/parallel.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is{csv};
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage() {
  std::cerr << "usage: ppatc_lint [--root <dir>] [--quiet] [--rules r1,r2]\n"
               "                  [--baseline <file>] [--write-baseline <file>]\n"
               "                  [--sarif <file>] [--threads <n>]\n"
               "                  [--dump-callgraph <file>] [--budget-ms <n>]\n"
               "                  [--explain <rule|all>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string rules_csv;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string callgraph_path;
  std::string explain;
  long budget_ms = 0;
  bool quiet = false;
  bool threads_given = false;
  for (int i = 1; i < argc; ++i) {
    const auto take_value = [&](std::string& into) {
      if (i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    if (std::strcmp(argv[i], "--root") == 0) {
      if (!take_value(root)) return usage();
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      if (!take_value(rules_csv)) return usage();
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      if (!take_value(baseline_path)) return usage();
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      if (!take_value(write_baseline_path)) return usage();
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      if (!take_value(sarif_path)) return usage();
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      std::string n;
      if (!take_value(n)) return usage();
      try {
        ppatc::runtime::set_thread_count(static_cast<std::size_t>(std::stoul(n)));
        threads_given = true;
      } catch (const std::exception&) {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--dump-callgraph") == 0) {
      if (!take_value(callgraph_path)) return usage();
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      if (!take_value(explain)) return usage();
    } else if (std::strcmp(argv[i], "--budget-ms") == 0) {
      std::string n;
      if (!take_value(n)) return usage();
      try {
        budget_ms = std::stol(n);
      } catch (const std::exception&) {
        return usage();
      }
    } else {
      return usage();
    }
  }
  if (!explain.empty()) {
    try {
      std::cout << ppatc::lint::explain_rule(explain);
    } catch (const std::exception& e) {
      std::cerr << "ppatc-lint: " << e.what() << "\n";
      return 2;
    }
    return 0;
  }
  if (!threads_given) {
    // --threads unset: fall back to the same PPATC_THREADS override the
    // runtime honors, so `PPATC_THREADS=4 ppatc_lint` pins the pool even if
    // something else created it first.
    if (const char* env = std::getenv("PPATC_THREADS")) {
      try {
        ppatc::runtime::set_thread_count(static_cast<std::size_t>(std::stoul(env)));
      } catch (const std::exception&) {
        std::cerr << "ppatc-lint: ignoring unparsable PPATC_THREADS='" << env << "'\n";
      }
    }
  }

  ppatc::lint::Config config;
  config.rules = split_csv(rules_csv);
  for (const std::string& rule : config.rules) {
    const auto& all = ppatc::lint::all_rules();
    if (std::find(all.begin(), all.end(), rule) == all.end()) {
      std::cerr << "ppatc-lint: unknown rule '" << rule << "'\n";
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  ppatc::lint::Report report;
  ppatc::lint::InterprocStats stats;
  std::string callgraph_json;
  try {
    report = ppatc::lint::run_lint(root, config,
                                   callgraph_path.empty() ? nullptr : &callgraph_json, &stats);
  } catch (const std::exception& e) {
    std::cerr << "ppatc-lint: " << e.what() << "\n";
    return 2;
  }
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  if (!write_baseline_path.empty()) {
    std::vector<ppatc::lint::BaselineEntry> entries;
    for (const ppatc::lint::Finding& f : report.findings) {
      if (!f.suppressed) entries.push_back({f.rule, f.file, f.line, ""});
    }
    std::ofstream os{write_baseline_path};
    os << ppatc::lint::format_baseline(entries);
    if (!os) {
      std::cerr << "ppatc-lint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    std::cout << "ppatc-lint: wrote " << entries.size() << " baseline entries to "
              << write_baseline_path << " (fill in the rationales)\n";
    return 0;
  }

  std::vector<ppatc::lint::BaselineEntry> stale;
  if (!baseline_path.empty()) {
    std::ifstream is{baseline_path};
    if (!is) {
      std::cerr << "ppatc-lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    try {
      const ppatc::lint::Baseline baseline = ppatc::lint::parse_baseline(buf.str());
      stale = ppatc::lint::apply_baseline(report, baseline);
    } catch (const std::exception& e) {
      std::cerr << "ppatc-lint: " << baseline_path << ": " << e.what() << "\n";
      return 2;
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream os{sarif_path};
    os << ppatc::lint::to_sarif(report, "src/");
    if (!os) {
      std::cerr << "ppatc-lint: cannot write " << sarif_path << "\n";
      return 2;
    }
  }

  if (!callgraph_path.empty()) {
    std::ofstream os{callgraph_path};
    os << callgraph_json;
    if (!os) {
      std::cerr << "ppatc-lint: cannot write " << callgraph_path << "\n";
      return 2;
    }
  }

  if (quiet) {
    std::cout << "ppatc-lint: " << report.files_scanned << " files, "
              << report.violation_count() << " violations, " << report.suppression_count()
              << " suppressed, " << report.baselined_count() << " baselined\n";
  } else {
    std::cout << ppatc::lint::format_report(report);
  }
  std::cout << "ppatc-lint: scanned " << report.files_scanned << " files in " << elapsed_ms
            << " ms on " << ppatc::runtime::thread_count() << " threads\n";
  if (stats.functions_indexed > 0) {
    std::cout << "ppatc-lint: indexed " << stats.functions_indexed << " functions, "
              << stats.call_edges << " call edges, " << stats.unresolved_externals
              << " unresolved external names\n";
  }
  if (stats.dataflow_summaries > 0) {
    std::cout << "ppatc-lint: " << stats.dataflow_summaries
              << " nontrivial dataflow summaries, fixpoint in " << stats.fixpoint_iterations
              << " iterations\n";
  }

  for (const ppatc::lint::BaselineEntry& entry : stale) {
    std::cerr << "ppatc-lint: stale baseline entry (matched nothing): " << entry.rule << " "
              << entry.file << ":" << entry.line << " — remove it\n";
  }
  const bool over_budget = budget_ms > 0 && elapsed_ms > budget_ms;
  if (over_budget) {
    std::cerr << "ppatc-lint: analysis took " << elapsed_ms << " ms, over the --budget-ms "
              << budget_ms << " hard budget\n";
  }
  return (report.clean() && stale.empty() && !over_budget) ? 0 : 1;
}
