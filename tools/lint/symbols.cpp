// Symbol indexer implementation: one linear walk tracks namespace/class
// scopes and detects function definitions by their signature shape; a second
// pass over each body extracts call sites, throws, and try barriers; a final
// pass finds root registrations (sigaction / signal / set_terminate /
// timer_create-style sigev_notify_function) and the lambdas handed to the
// parallel runtime. See symbols.hpp for the approximation contract.
#include "symbols.hpp"

#include <algorithm>
#include <array>

namespace ppatc::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

template <std::size_t N>
bool in_set(const std::array<const char*, N>& set, const std::string& t) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* s) { return t == s; });
}

// Identifiers that look like `name(` but never denote a call or definition.
bool is_nocall_keyword(const std::string& t) {
  static const std::array<const char*, 20> kSet{
      "if",       "while",    "for",      "switch",  "return",   "sizeof",
      "alignof",  "alignas",  "catch",    "static_assert",       "decltype",
      "noexcept", "assert",   "defined",  "requires", "typeid",  "constexpr",
      "offsetof", "co_await", "co_yield",
  };
  return in_set(kSet, t);
}

// Statement keywords that may directly precede a call (`return foo(x)`),
// unlike type identifiers, which make `Foo bar(args)` a declaration.
bool is_stmt_keyword(const std::string& t) {
  static const std::array<const char*, 5> kSet{"return", "else", "do", "case", "co_return"};
  return in_set(kSet, t);
}

// Union of the signal-safety and realtime-purity ban lists. Recorded per
// function at index time (HazardToken); each rule filters down to its own
// subset, so a stream type flagged by signal-safety is invisible to
// realtime-purity and vice versa.
bool is_hazard_ident(const std::string& t) {
  static const std::array<const char*, 50> kSet{
      // allocation
      "malloc", "calloc", "realloc", "free", "strdup", "new", "delete",
      "make_unique", "make_shared",
      // formatted / buffered I/O
      "snprintf", "sprintf", "vsnprintf", "vsprintf", "printf", "fprintf",
      "vfprintf", "puts", "fputs", "fwrite", "fread", "fopen", "fclose",
      "fflush", "fscanf", "system", "popen", "getline",
      // iostreams
      "cout", "cerr", "clog", "endl", "ostringstream", "istringstream",
      "stringstream", "ofstream", "ifstream", "fstream",
      // allocating string types
      "string", "wstring", "to_string",
      // locks / synchronization
      "mutex", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "condition_variable", "call_once",
      // environment
      "getenv", "setenv",
      // function-local statics take a guard lock on first entry
      "static",
  };
  return in_set(kSet, t);
}

// Walks from the ')' closing a candidate parameter list through the tokens a
// function signature may legally carry — cv/ref qualifiers, noexcept,
// override/final, a trailing return type, a ctor initializer list — and
// returns the index of the body '{'. Returns kNpos for everything that is
// not a definition: declarations (';'), `= default/delete/0`, and expression
// contexts (`foo(a) + b`, `while (g(x)) {`, ...), which hit a token outside
// the signature grammar first.
std::size_t signature_body(const std::vector<Token>& toks, std::size_t close,
                           bool* is_noexcept) {
  std::size_t j = close + 1;
  bool trailing = false;  // after '->': consuming trailing-return-type tokens
  while (j < toks.size()) {
    const std::string& t = toks[j].text;
    if (t == "{") return j;
    if (t == ";" || t == "=") return kNpos;
    if (t == ":") {
      // Ctor initializer list: `: member(args), base{args}... {`. A
      // ternary's ':' lands here too and falls out through kNpos below.
      ++j;
      while (j < toks.size()) {
        while (j < toks.size() && toks[j].text != "(" && toks[j].text != "{" &&
               toks[j].text != ";" && toks[j].text != ")") {
          ++j;
        }
        if (j >= toks.size() || toks[j].text == ";" || toks[j].text == ")") return kNpos;
        const std::size_t g = match_forward(toks, j);
        if (g >= toks.size()) return kNpos;
        j = g + 1;
        if (j < toks.size() && toks[j].text == ",") {
          ++j;
          continue;
        }
        if (j < toks.size() && toks[j].text == "...") ++j;  // pack expansion
        return j < toks.size() && toks[j].text == "{" ? j : kNpos;
      }
      return kNpos;
    }
    if (t == "->") {
      trailing = true;
      ++j;
      continue;
    }
    if (trailing) {
      if (toks[j].kind != TokKind::kPunct || t == "::" || t == "<" || t == ">" ||
          t == ">>" || t == "*" || t == "&" || t == ",") {
        ++j;
        continue;
      }
      return kNpos;
    }
    if (t == "const" || t == "override" || t == "final" || t == "mutable" || t == "&" ||
        t == "&&") {
      ++j;
      continue;
    }
    if (t == "noexcept" || t == "throw") {
      const bool conditional = j + 1 < toks.size() && toks[j + 1].text == "(";
      if (t == "noexcept" && !conditional && is_noexcept != nullptr) *is_noexcept = true;
      ++j;
      if (conditional) {
        const std::size_t g = match_forward(toks, j);
        if (g >= toks.size()) return kNpos;
        j = g + 1;
      }
      continue;
    }
    return kNpos;
  }
  return kNpos;
}

// Scans a body token range [open+1, close) for call sites, throw statements,
// and try barriers. Nested lambda bodies are inside the range, so their
// calls and throws are attributed to the enclosing function as well — which
// is exactly the conservative reading the transitive rules want.
void scan_body(const std::vector<Token>& toks, std::size_t open, std::size_t close,
               FunctionDef& def) {
  std::size_t stmt_start = open + 1;
  // Does the current statement start with `static` / `thread_local` before
  // position `upto`? Drives the first-call-only lazy-init escape.
  const auto stmt_has_static = [&](std::size_t upto) {
    for (std::size_t j = stmt_start; j < upto; ++j) {
      if (toks[j].text == "static" || toks[j].text == "thread_local") return true;
    }
    return false;
  };
  for (std::size_t k = open + 1; k < close && k < toks.size(); ++k) {
    const Token& t = toks[k];
    if (t.kind == TokKind::kPunct) {
      if (t.text == ";" || t.text == "{" || t.text == "}") stmt_start = k + 1;
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "throw") {
      def.throw_lines.push_back(t.line);
      continue;
    }
    if (t.text == "try") {
      def.has_try = true;
      continue;
    }
    if (is_hazard_ident(t.text) &&
        (k + 1 >= toks.size() || (toks[k + 1].text != "*" && toks[k + 1].text != "&"))) {
      // `std::string* p` / `std::mutex&` declare a pointer or reference to an
      // existing object — no construction, no hazard.
      def.hazards.push_back({t.text, t.line, t.col, stmt_has_static(k)});
      // Fall through: `snprintf(` is both a hazard token and a call site.
    }
    if (k + 1 >= toks.size() || toks[k + 1].text != "(") continue;
    if (is_nocall_keyword(t.text) || t.text == "operator" || t.text == "new" ||
        t.text == "delete") {
      continue;
    }
    // Walk back a `a::b::name` qualifier chain to find the gating token.
    std::string qualifier;
    std::size_t q = k;
    while (q >= open + 3 && toks[q - 1].text == "::" && toks[q - 2].kind == TokKind::kIdent) {
      qualifier = toks[q - 2].text + (qualifier.empty() ? "" : "::") + qualifier;
      q -= 2;
    }
    const bool have_prev = q > open;
    const std::string prev = have_prev ? toks[q - 1].text : std::string{};
    const TokKind prev_kind = have_prev ? toks[q - 1].kind : TokKind::kPunct;
    const bool member = prev == "." || prev == "->";
    if (!member) {
      // Declaration-shaped: `Foo bar(args)` — the previous token is part of
      // a type. Statement keywords (`return foo(x)`) still introduce calls.
      if (prev_kind == TokKind::kIdent && !is_stmt_keyword(prev)) continue;
      if (prev == ">" || prev == "*" || prev == "&" || prev == "~") continue;
    }
    def.calls.push_back({t.text, qualifier, t.line, t.col, member, stmt_has_static(k)});
  }
}

// Classifies a non-function '{' from its statement lookback [s, i): a
// namespace or class/struct/union head contributes a scope name; everything
// else (control flow, initializers, enum bodies) is a plain brace.
std::string scope_name_for_open(const std::vector<Token>& toks, std::size_t s, std::size_t i,
                                bool& named) {
  bool has_namespace = false;
  bool has_enum = false;
  bool has_assign = false;
  std::size_t ns_kw = kNpos;
  std::size_t class_kw = kNpos;
  int angle = 0;
  for (std::size_t j = s; j < i; ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") ++angle;
    if (t == ">" && angle > 0) --angle;
    if (t == "namespace") {
      has_namespace = true;
      ns_kw = j;
    } else if (t == "enum") {
      has_enum = true;
    } else if (t == "class" || t == "struct" || t == "union") {
      class_kw = j;  // keep the LAST: `template <class T> struct Foo {`
    } else if (t == "=" && angle == 0) {
      has_assign = true;  // `Foo f = {...}`: an initializer, not a scope
    }
  }
  if (has_namespace && ns_kw != kNpos) {
    std::string name;
    for (std::size_t j = ns_kw + 1; j < i; ++j) {
      if (toks[j].kind == TokKind::kIdent) {
        if (!name.empty()) name += "::";
        name += toks[j].text;
      }
    }
    named = true;
    return name;
  }
  if (class_kw != kNpos && !has_enum && !has_assign) {
    for (std::size_t j = class_kw + 1; j < i; ++j) {
      if (toks[j].kind == TokKind::kIdent && toks[j].text != "final" &&
          toks[j].text != "alignas") {
        named = true;
        return toks[j].text;
      }
    }
    named = true;
    return {};  // anonymous struct
  }
  named = false;
  return {};
}

std::string join_qname(const std::vector<std::string>& scope, const std::string& qualifier,
                       const std::string& name) {
  std::string out;
  for (const std::string& s : scope) {
    if (s.empty()) continue;
    out += s;
    out += "::";
  }
  if (!qualifier.empty()) {
    out += qualifier;
    out += "::";
  }
  out += name;
  return out;
}

// Parses the parameter list whose '(' sits at `open`: entries split on
// top-level commas; each entry's name is its last identifier before any
// default-argument '='. `by_ref` / `is_fp` only look at top-level tokens, so
// `std::vector<double>& xs` is a reference but not a floating-point
// parameter — exactly the distinction the fp-reduction-order rule needs.
std::vector<ParamInfo> parse_params(const std::vector<Token>& toks, std::size_t open) {
  std::vector<ParamInfo> params;
  const std::size_t close = match_forward(toks, open);
  if (close >= toks.size()) return params;
  std::size_t p = open + 1;
  while (p < close) {
    std::size_t e = p;
    int depth = 0;
    std::size_t eq = 0;  // first top-level '=' (default argument)
    while (e < close) {
      const std::string& t = toks[e].text;
      if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
      if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
      if (t == "," && depth == 0) break;
      if (t == "=" && depth == 0 && eq == 0) eq = e;
      ++e;
    }
    const std::size_t limit = eq != 0 ? eq : e;
    if (limit == p + 1 && toks[p].text == "void") {
      p = e + 1;
      continue;  // C-style (void): no parameters
    }
    ParamInfo info;
    int angle = 0;
    for (std::size_t k = p; k < limit; ++k) {
      const std::string& t = toks[k].text;
      if (t == "<") ++angle;
      if (t == ">" && angle > 0) --angle;
      if (angle != 0) continue;
      if (t == "&" || t == "&&") info.by_ref = true;
      if (t == "double" || t == "float") info.is_fp = true;
    }
    for (std::size_t k = limit; k > p;) {
      --k;
      if (toks[k].kind == TokKind::kIdent && toks[k].text != "const" &&
          toks[k].text != "double" && toks[k].text != "float") {
        info.name = toks[k].text;
        break;
      }
    }
    if (limit > p) params.push_back(std::move(info));
    p = e + 1;
  }
  return params;
}

bool is_parallel_entry(const std::string& t) {
  return t == "parallel_for" || t == "parallel_for_chunks" || t == "parallel_reduce" ||
         t == "parallel_invoke";
}

// Extracts the trailing identifier of an `&`-optional, possibly qualified
// name spanning [first, last): `&obs::detail::handler` -> "handler". Returns
// "" when the range holds anything else (a lambda, a call, a cast).
std::string handler_name(const std::vector<Token>& toks, std::size_t first, std::size_t last) {
  std::string name;
  for (std::size_t j = first; j < last; ++j) {
    const std::string& s = toks[j].text;
    if (s == "&" || s == "::") continue;
    if (toks[j].kind != TokKind::kIdent) return {};
    name = s;
  }
  return name;
}

}  // namespace

FileIndex index_file(const std::string& rel, const std::string& contents) {
  FileIndex idx;
  idx.rel = rel;
  const FileText text = split_and_strip(contents);
  idx.allowed = allowed_rules_per_line(text.raw);
  std::vector<Token> toks = tokenize(text);

  // `// ppatc: cache-key` annotation lines, from the raw text (the dataflow
  // determinism-taint rule treats any call under one as a sink).
  for (std::size_t i = 0; i < text.raw.size(); ++i) {
    if (text.raw[i].find("ppatc: cache-key") != std::string::npos) {
      idx.cache_key_lines.push_back(static_cast<int>(i + 1));
    }
  }

  // `// ppatc-lint: signal-safe` annotation lines, from the raw text (the
  // token stream has comments stripped).
  std::vector<char> safe_line(text.raw.size(), 0);
  for (std::size_t i = 0; i < text.raw.size(); ++i) {
    if (text.raw[i].find("ppatc-lint: signal-safe") != std::string::npos) safe_line[i] = 1;
  }
  const auto annotated_at = [&](int line) {  // def line or the line directly above
    const auto has = [&](int l) {
      return l >= 1 && static_cast<std::size_t>(l) <= safe_line.size() &&
             safe_line[static_cast<std::size_t>(l) - 1] != 0;
    };
    return has(line) || has(line - 1);
  };

  // ---- pass 1: scope-tracked definition detection ---------------------------
  struct RawDef {
    FunctionDef def;
    std::size_t body_open = 0;
    std::size_t body_close = 0;
  };
  std::vector<RawDef> defs;
  std::vector<std::string> scope;     // names of enclosing named scopes
  std::vector<char> brace_named;      // one entry per open '{': pushed a name?
  std::size_t stmt_start = 0;         // first token of the current statement
  std::size_t pending_body = kNpos;   // body '{' of the def just detected

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        bool named = false;
        std::string name;
        if (i == pending_body) {
          pending_body = kNpos;  // function body: plain scope
        } else {
          name = scope_name_for_open(toks, stmt_start, i, named);
        }
        if (named) scope.push_back(name);
        brace_named.push_back(named ? 1 : 0);
        stmt_start = i + 1;
      } else if (t.text == "}") {
        if (!brace_named.empty()) {
          if (brace_named.back() != 0 && !scope.empty()) scope.pop_back();
          brace_named.pop_back();
        }
        stmt_start = i + 1;
      } else if (t.text == ";") {
        stmt_start = i + 1;
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    if (is_nocall_keyword(t.text) || t.text == "operator" || t.text == "new" ||
        t.text == "delete") {
      continue;
    }
    // Qualified definition (`void Cpu::run(...)`)? Walk back the chain.
    std::string qualifier;
    std::size_t q = i;
    while (q >= 2 && toks[q - 1].text == "::" && toks[q - 2].kind == TokKind::kIdent) {
      qualifier = toks[q - 2].text + (qualifier.empty() ? "" : "::") + qualifier;
      q -= 2;
    }
    if (q > 0 &&
        (toks[q - 1].text == "." || toks[q - 1].text == "->" || toks[q - 1].text == "~")) {
      continue;  // member access or destructor
    }
    const std::size_t close = match_forward(toks, i + 1);
    if (close >= toks.size()) continue;
    bool noex = false;
    const std::size_t body = signature_body(toks, close, &noex);
    if (body == kNpos) continue;
    RawDef rd;
    rd.def.name = t.text;
    rd.def.qname = join_qname(scope, qualifier, t.text);
    // Enclosing scope = the qname minus the trailing "::name" (join_qname with
    // an empty name leaves a trailing "::" to strip).
    const std::string sc = join_qname(scope, qualifier, {});
    rd.def.scope = sc.size() >= 2 ? sc.substr(0, sc.size() - 2) : std::string{};
    rd.def.line = t.line;
    rd.def.col = t.col;
    rd.def.is_noexcept = noex;
    rd.def.annotated_signal_safe = annotated_at(t.line);
    rd.def.params = parse_params(toks, i + 1);
    rd.body_open = body;
    rd.body_close = match_forward(toks, body);
    rd.def.body_open = rd.body_open;
    rd.def.body_close = rd.body_close;
    defs.push_back(std::move(rd));
    pending_body = body;
  }

  // ---- pass 2: body scans ---------------------------------------------------
  for (RawDef& rd : defs) scan_body(toks, rd.body_open, rd.body_close, rd.def);

  // ---- pass 3: roots (handler registrations + parallel lambdas) -------------
  for (std::size_t k = 0; k < toks.size(); ++k) {
    const Token& t = toks[k];
    if (t.kind != TokKind::kIdent) continue;
    // sigev_notify_function covers the SIGEV_THREAD form of timer_create /
    // setitimer-style registration; the SIGEV_SIGNAL form routes through a
    // sigaction assignment and is caught by sa_handler / sa_sigaction.
    if ((t.text == "sa_handler" || t.text == "sa_sigaction" ||
         t.text == "sigev_notify_function") &&
        k + 1 < toks.size() && toks[k + 1].text == "=") {
      std::size_t stop = k + 2;
      while (stop < toks.size() && toks[stop].text != ";") ++stop;
      const std::string name = handler_name(toks, k + 2, stop);
      if (!name.empty() && name != "SIG_DFL" && name != "SIG_IGN") {
        idx.signal_roots.push_back(name);
      }
      continue;
    }
    if (k + 1 >= toks.size() || toks[k + 1].text != "(") continue;
    if (t.text == "signal" || t.text == "set_terminate") {
      const std::size_t close = match_forward(toks, k + 1);
      if (close >= toks.size()) continue;
      // The handler argument: last argument for signal(sig, fn), only
      // argument for set_terminate(fn). Accept `&fn` / `fn`.
      std::size_t arg = k + 2;
      if (t.text == "signal") {
        int depth = 0;
        std::size_t comma = kNpos;
        for (std::size_t j = k + 1; j < close; ++j) {
          const std::string& s = toks[j].text;
          if (s == "(" || s == "[" || s == "{") ++depth;
          if (s == ")" || s == "]" || s == "}") --depth;
          if (s == "," && depth == 1) comma = j;
        }
        if (comma == kNpos) continue;
        arg = comma + 1;
      }
      const std::string name = handler_name(toks, arg, close);
      if (!name.empty() && name != "SIG_DFL" && name != "SIG_IGN" && name != "nullptr") {
        (t.text == "signal" ? idx.signal_roots : idx.terminate_roots).push_back(name);
      }
      continue;
    }
    if (!is_parallel_entry(t.text)) continue;
    // Skip the runtime's own definitions/declarations of these entry points.
    if (k > 0 && (toks[k - 1].kind == TokKind::kIdent || toks[k - 1].text == ">" ||
                  toks[k - 1].text == "&" || toks[k - 1].text == "*")) {
      continue;
    }
    const std::size_t close = match_forward(toks, k + 1);
    if (close >= toks.size()) continue;
    int depth = 0;
    for (std::size_t j = k + 1; j < close; ++j) {
      const std::string& s = toks[j].text;
      if (s == "(" || s == "{") ++depth;
      if (s == ")" || s == "}") --depth;
      if (s != "[" || depth != 1) continue;
      const std::string& before = toks[j - 1].text;
      if (before != "(" && before != ",") continue;  // not an argument-position lambda intro
      const std::size_t cap_close = match_forward(toks, j);
      if (cap_close >= toks.size()) break;
      std::size_t p = cap_close + 1;
      std::vector<ParamInfo> lam_params;
      if (p < toks.size() && toks[p].text == "(") {
        lam_params = parse_params(toks, p);
        p = match_forward(toks, p) + 1;
      }
      while (p < toks.size() && toks[p].text != "{" && toks[p].text != ";" &&
             toks[p].text != ")") {
        ++p;  // mutable / noexcept / -> return-type
      }
      if (p >= toks.size() || toks[p].text != "{") {
        j = cap_close;
        continue;
      }
      const std::size_t body_close = match_forward(toks, p);
      FunctionDef lam;
      lam.name = "<parallel-lambda>";
      lam.qname = "parallel-lambda@" + rel + ":" + std::to_string(toks[j].line);
      lam.line = toks[j].line;
      lam.col = toks[j].col;
      lam.is_parallel_lambda = true;
      lam.params = std::move(lam_params);
      lam.body_open = p;
      lam.body_close = body_close;
      // Name lookup from a lambda body sees what the enclosing function sees:
      // inherit the scope of the innermost pass-1 def whose body contains it.
      std::size_t best_open = 0;
      for (const RawDef& rd : defs) {
        if (rd.body_open < j && rd.body_close > body_close && rd.body_open >= best_open) {
          best_open = rd.body_open;
          lam.scope = rd.def.scope;
        }
      }
      scan_body(toks, p, body_close, lam);
      defs.push_back({std::move(lam), p, body_close});
      j = body_close < close ? body_close : cap_close;
    }
  }

  idx.functions.reserve(defs.size());
  for (RawDef& rd : defs) idx.functions.push_back(std::move(rd.def));
  idx.tokens = std::move(toks);
  return idx;
}

}  // namespace ppatc::lint
