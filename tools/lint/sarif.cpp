// SARIF 2.1.0 serialization of a lint report, shaped for GitHub
// code-scanning ingestion: one run, every rule as a reportingDescriptor,
// one result per finding. Suppressed findings are emitted with a
// `suppressions` array (kind "inSource" for allow() comments, "external"
// for baseline entries) so code-scanning closes rather than re-opens them.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "lint_core.hpp"

namespace ppatc::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const Report& report, const std::string& uri_prefix) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
        "sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"ppatc-lint\",\n"
     << "          \"informationUri\": \"https://example.invalid/ppatc\",\n"
     << "          \"rules\": [\n";
  bool first = true;
  for (const std::string& rule : all_rules()) {
    if (!first) os << ",\n";
    first = false;
    // Descriptions come from the --explain table (explain.cpp), which a test
    // pins to cover all_rules() — the CLI and code-scanning stay in sync.
    const auto it = rule_explanations().find(rule);
    const std::string desc = it == rule_explanations().end() ? rule : it->second.summary;
    os << "            {\n"
       << "              \"id\": \"" << json_escape(rule) << "\",\n"
       << "              \"shortDescription\": { \"text\": \"" << json_escape(desc) << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
       << "            }";
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  first = true;
  for (const Finding& f : report.findings) {
    if (!first) os << ",\n";
    first = false;
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << json_escape(f.message) << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(uri_prefix + f.file) << "\" },\n"
       << "                \"region\": { \"startLine\": " << (f.line > 0 ? f.line : 1);
    // One-token findings carry a proper single-token region so code-scanning
    // underlines the offending token, not the whole line.
    if (f.col > 0 && f.end_col > f.col) {
      os << ", \"startColumn\": " << f.col << ", \"endColumn\": " << f.end_col;
    }
    os << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]";
    // Path-region chain (dataflow findings): the taint source, intermediate
    // call edges and the sink render as relatedLocations, so code-scanning
    // shows the whole source -> sink path, not just the sink line.
    if (!f.related.empty()) {
      os << ",\n          \"relatedLocations\": [\n";
      bool first_rel = true;
      for (const Finding::RelatedLocation& rel : f.related) {
        if (!first_rel) os << ",\n";
        first_rel = false;
        os << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": { \"uri\": \""
           << json_escape(uri_prefix + rel.file) << "\" },\n"
           << "                \"region\": { \"startLine\": " << (rel.line > 0 ? rel.line : 1)
           << " }\n"
           << "              },\n"
           << "              \"message\": { \"text\": \"" << json_escape(rel.note) << "\" }\n"
           << "            }";
      }
      os << "\n          ]";
    }
    if (f.suppressed || f.baselined) {
      os << ",\n"
         << "          \"suppressions\": [\n"
         << "            { \"kind\": \"" << (f.suppressed ? "inSource" : "external")
         << "\" }\n"
         << "          ]";
    }
    os << "\n        }";
  }
  os << "\n      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace ppatc::lint
