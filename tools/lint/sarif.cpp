// SARIF 2.1.0 serialization of a lint report, shaped for GitHub
// code-scanning ingestion: one run, every rule as a reportingDescriptor,
// one result per finding. Suppressed findings are emitted with a
// `suppressions` array (kind "inSource" for allow() comments, "external"
// for baseline entries) so code-scanning closes rather than re-opens them.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "lint_core.hpp"

namespace ppatc::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const std::map<std::string, std::string>& rule_descriptions() {
  static const std::map<std::string, std::string> kDescriptions{
      {"unit-typed-api",
       "Public APIs must use ppatc::units strong types, not raw doubles with "
       "dimension-implying names."},
      {"determinism",
       "No wall-clock or nondeterministic-seed sources: every evaluation path must be "
       "bit-reproducible for a fixed seed."},
      {"unordered-iter",
       "No range-for over unordered containers; iteration order is implementation-defined."},
      {"env-allowlist",
       "std::getenv is restricted to the blessed runtime/observability configuration sites."},
      {"pragma-once", "Every public header must carry #pragma once."},
      {"layering",
       "The include graph over src/<module>/ must stay inside the DAG declared in "
       "tools/lint/layering.toml."},
      {"parallel-safety",
       "Lambdas passed to the deterministic parallel runtime must be chunk-pure: no shared "
       "writes, no synchronization primitives, no thread-identity APIs."},
      {"units-escape",
       "Raw doubles unwrapped from units must not mix dimensions or re-enter the unit system "
       "through mismatched conversions."},
      {"lifetime",
       "Functions returning string_view/span/references must not return body-locals or "
       "temporaries."},
      {"obs-name-literal",
       "Metric/span/flight-event names at obs call sites must be string literals: obs stores "
       "the name pointer or interns it for the process lifetime."},
      {"signal-safety",
       "Functions transitively reachable from a registered signal handler or "
       "std::set_terminate hook may only use the POSIX async-signal-safe allowlist plus "
       "internals annotated '// ppatc-lint: signal-safe'."},
      {"noexcept-escape",
       "A noexcept function must not transitively reach a throw or known-throwing callee "
       "without an intervening try/catch; an escape is std::terminate."},
      {"realtime-purity",
       "Functions reachable from parallel-runtime lambdas, the ISS threaded-dispatch loop, "
       "and flight-recorder event paths must not allocate, lock, or perform I/O."},
  };
  return kDescriptions;
}

}  // namespace

std::string to_sarif(const Report& report, const std::string& uri_prefix) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
        "sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"ppatc-lint\",\n"
     << "          \"informationUri\": \"https://example.invalid/ppatc\",\n"
     << "          \"rules\": [\n";
  bool first = true;
  for (const std::string& rule : all_rules()) {
    if (!first) os << ",\n";
    first = false;
    const auto it = rule_descriptions().find(rule);
    const std::string desc = it == rule_descriptions().end() ? rule : it->second;
    os << "            {\n"
       << "              \"id\": \"" << json_escape(rule) << "\",\n"
       << "              \"shortDescription\": { \"text\": \"" << json_escape(desc) << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
       << "            }";
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  first = true;
  for (const Finding& f : report.findings) {
    if (!first) os << ",\n";
    first = false;
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << json_escape(f.message) << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(uri_prefix + f.file) << "\" },\n"
       << "                \"region\": { \"startLine\": " << (f.line > 0 ? f.line : 1);
    // One-token findings carry a proper single-token region so code-scanning
    // underlines the offending token, not the whole line.
    if (f.col > 0 && f.end_col > f.col) {
      os << ", \"startColumn\": " << f.col << ", \"endColumn\": " << f.end_col;
    }
    os << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]";
    if (f.suppressed || f.baselined) {
      os << ",\n"
         << "          \"suppressions\": [\n"
         << "            { \"kind\": \"" << (f.suppressed ? "inSource" : "external")
         << "\" }\n"
         << "          ]";
    }
    os << "\n        }";
  }
  os << "\n      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace ppatc::lint
