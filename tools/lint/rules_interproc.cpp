// The three transitive rules over the whole-repo call graph: signal-safety,
// noexcept-escape, realtime-purity. All three are BFS reachability cones with
// parent tracking, so every finding can name the path that put the function
// in the cone ("handler 'x' via a -> b -> c").
//
// Conservatism contract (see call_graph.hpp): member and qualified calls
// link to every definition sharing their name, unqualified calls are
// scope-filtered the way real name lookup is, unresolved calls are never
// dropped, and approximation errors must only ever ADD findings, never hide
// them. All three rules walk the graph's resolved edges — never by_name
// directly — so the filtering applies uniformly. The
// escape hatches are explicit and visible: `// ppatc-lint: signal-safe`
// annotations gate traversal, allow() suppressions are counted findings, and
// `static`/`thread_local` initializer statements prune realtime edges as
// first-call-only lazy init.
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "call_graph.hpp"
#include "lint_core.hpp"
#include "rules_internal.hpp"
#include "symbols.hpp"

namespace ppatc::lint::detail {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool contains(const std::set<std::string>& set, const std::string& name) {
  return set.count(name) != 0;
}

// ---- token / callee classification ------------------------------------------

// Hazard tokens the signal-safety rule flags inside a handler cone. POSIX
// async-signal-safety (signal-safety(7)) bans anything that may take the
// allocator lock, buffer I/O, or block: malloc/new, std::string, iostreams,
// snprintf (locale-dependent on glibc), locks, getenv, and function-local
// statics (the guard acquires a lock on first entry).
const std::set<std::string>& signal_banned() {
  static const std::set<std::string> kSet{
      "malloc",     "calloc",      "realloc",      "free",          "strdup",
      "new",        "delete",      "make_unique",  "make_shared",   "snprintf",
      "sprintf",    "vsnprintf",   "vsprintf",     "printf",        "fprintf",
      "vfprintf",   "puts",        "fputs",        "fwrite",        "string",
      "wstring",    "to_string",   "ostringstream", "istringstream", "stringstream",
      "ofstream",   "ifstream",    "fstream",      "cout",          "cerr",
      "clog",       "endl",        "mutex",        "lock_guard",    "unique_lock",
      "scoped_lock", "shared_lock", "condition_variable",           "call_once",
      "getenv",     "setenv",      "static",
  };
  return kSet;
}

// Unresolved callees a signal-handler cone may use: the POSIX
// async-signal-safe list (signal-safety(7)) plus lock-free std primitives
// (atomics, mem*, bounded string_view/array accessors) that compile to plain
// loads and stores.
const std::set<std::string>& signal_allowlist() {
  static const std::set<std::string> kSet{
      // process control / signals
      "abort", "_exit", "_Exit", "raise", "kill", "signal", "sigaction",
      "sigemptyset", "sigfillset", "sigaddset", "sigdelset", "sigprocmask",
      "pthread_sigmask",
      // unbuffered fd I/O
      "write", "read", "open", "openat", "close", "lseek", "fsync",
      "fdatasync", "unlink",
      // identity / clocks
      "getpid", "gettid", "time", "clock_gettime",
      // raw memory / C strings (async-signal-safe since POSIX.1-2008)
      "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp", "strncmp",
      "strchr", "strrchr", "strcpy", "strncpy",
      // lock-free numerics
      "isfinite", "isnan", "isinf", "signbit", "fabs", "abs", "labs", "llabs",
      "min", "max",
      // compiler intrinsic: reads a register, cannot fail or lock (the
      // profiler's frame-pointer walk seeds from it on exotic targets)
      "__builtin_frame_address",
      // std::atomic operations
      "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or", "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
      // bounded accessors on pre-built objects (no allocation, no locking)
      "c_str", "data", "size", "empty", "begin", "end",
  };
  return kSet;
}

// Unresolved callees the noexcept-escape rule treats as throwing: the
// contract macros (macro bodies are invisible to the token stream, so the
// call site is the only evidence) and std functions specified to throw.
const std::set<std::string>& throwing_externals() {
  static const std::set<std::string> kSet{
      "PPATC_EXPECT", "PPATC_ENSURE", "contract_fail", "at",
      "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod", "stold",
      "throw_with_nested", "rethrow_exception",
  };
  return kSet;
}

// Realtime-purity ban sets, split so the finding can say which contract the
// site breaks. A bare `mutex` declaration is deliberately absent: owning a
// mutex is free, acquiring it (lock_guard / .lock()) is what blocks.
const std::set<std::string>& realtime_alloc() {
  static const std::set<std::string> kSet{
      "malloc", "calloc", "realloc", "free", "strdup", "new", "delete",
      "make_unique", "make_shared",
  };
  return kSet;
}
const std::set<std::string>& realtime_lock() {
  static const std::set<std::string> kSet{
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "condition_variable", "call_once",
  };
  return kSet;
}
const std::set<std::string>& realtime_io() {
  static const std::set<std::string> kSet{
      "printf", "fprintf", "vfprintf", "fopen", "fclose", "fwrite", "fread",
      "fputs", "puts", "fflush", "fscanf", "system", "popen", "cout", "cerr",
      "clog", "endl", "ofstream", "ifstream", "fstream", "getline",
  };
  return kSet;
}

bool realtime_banned(const std::string& t) {
  return contains(realtime_alloc(), t) || contains(realtime_lock(), t) ||
         contains(realtime_io(), t);
}

const char* realtime_verb(const std::string& t) {
  if (contains(realtime_alloc(), t)) return "allocates";
  if (contains(realtime_lock(), t)) return "blocks";
  return "performs I/O";
}

// ---- shared cone machinery --------------------------------------------------

// Resolved targets for one call site, straight from the graph's edges — so
// the scope-visibility filter in build_call_graph applies to every rule.
// Empty means unresolved; each rule picks its own external policy.
std::vector<std::size_t> targets_of(const CallGraph& g, std::size_t node,
                                    const CallSite& call) {
  std::vector<std::size_t> out;
  for (const std::size_t e : g.out_edges[node]) {
    if (g.edges[e].site == &call) out.push_back(g.edges[e].callee);
  }
  return out;
}

std::string path_of(const CallGraph& g, const std::vector<std::size_t>& parent,
                    std::size_t n) {
  std::vector<const std::string*> chain;
  for (std::size_t cur = n; cur != kNone; cur = parent[cur]) {
    chain.push_back(&g.nodes[cur].def->qname);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += **it;
  }
  return out;
}

Finding make_finding(const char* rule, const FileIndex& file, int line, int col,
                     std::size_t token_len, std::string message, bool suppressed) {
  Finding f;
  f.rule = rule;
  f.file = file.rel;
  f.line = line;
  f.message = std::move(message);
  f.suppressed = suppressed;
  f.col = col;
  f.end_col = col > 0 ? col + static_cast<int>(token_len) : 0;
  return f;
}

bool rule_enabled(const Config& config, const std::string& rule) {
  if (config.rules.empty()) return true;
  for (const std::string& r : config.rules) {
    if (r == rule) return true;
  }
  return false;
}

// ---- signal-safety ----------------------------------------------------------

void rule_signal_safety(const std::vector<FileIndex>& files, const CallGraph& g,
                        std::vector<Finding>& out) {
  static const char* kRule = "signal-safety";
  // Roots, in file order then registration order: deterministic.
  std::vector<std::pair<std::size_t, const char*>> roots;
  for (const FileIndex& file : files) {
    const auto add = [&](const std::vector<std::string>& names, const char* kind) {
      for (const std::string& name : names) {
        const auto it = g.by_name.find(name);
        if (it == g.by_name.end()) continue;
        for (const std::size_t n : it->second) {
          if (!g.nodes[n].def->is_parallel_lambda) roots.emplace_back(n, kind);
        }
      }
    };
    add(file.signal_roots, "signal handler");
    add(file.terminate_roots, "terminate hook");
  }
  if (roots.empty()) return;

  std::vector<char> visited(g.nodes.size(), 0);
  std::vector<std::size_t> parent(g.nodes.size(), kNone);
  std::vector<std::size_t> root_of(g.nodes.size(), kNone);
  std::vector<const char*> kind_of(g.nodes.size(), nullptr);
  std::vector<std::size_t> queue;
  for (const auto& [n, kind] : roots) {
    if (visited[n] != 0) continue;
    visited[n] = 1;
    root_of[n] = n;
    kind_of[n] = kind;
    queue.push_back(n);
  }

  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t n = queue[qi];
    const FunctionDef& fn = *g.nodes[n].def;
    const FileIndex& file = *g.nodes[n].file;
    std::string cone = std::string{kind_of[n]} + " '" + g.nodes[root_of[n]].def->qname + "'";
    if (root_of[n] != n) cone += " via " + path_of(g, parent, n);

    // A def-line allow() opts the whole subtree out of the cone — emitted as
    // a counted suppressed finding so the opt-out stays visible.
    if (file.line_allows(fn.line, kRule)) {
      out.push_back(make_finding(kRule, file, fn.line, fn.col, fn.name.size(),
                                 "'" + fn.qname + "' opts out of the signal-safety cone of " +
                                     cone,
                                 true));
      continue;
    }

    for (const HazardToken& h : fn.hazards) {
      if (!contains(signal_banned(), h.text)) continue;
      out.push_back(make_finding(
          kRule, file, h.line, h.col, h.text.size(),
          "'" + h.text + "' in '" + fn.qname + "' is not async-signal-safe (cone of " +
              cone + ")",
          file.line_allows(h.line, kRule)));
    }

    for (const CallSite& call : fn.calls) {
      if (contains(signal_banned(), call.name)) continue;  // flagged as a hazard token
      const std::vector<std::size_t> targets = targets_of(g, n, call);
      if (targets.empty()) {
        if (contains(signal_allowlist(), call.name)) continue;
        out.push_back(make_finding(
            kRule, file, call.line, call.col, call.name.size(),
            "'" + fn.qname + "' calls '" + call.name +
                "()', which is not on the async-signal-safe allowlist (cone of " + cone + ")",
            file.line_allows(call.line, kRule)));
        continue;
      }
      for (const std::size_t target : targets) {
        const FunctionDef& callee = *g.nodes[target].def;
        if (callee.is_parallel_lambda) continue;
        if (callee.annotated_signal_safe || visited[target] != 0) {
          if (visited[target] == 0) {
            visited[target] = 1;
            parent[target] = n;
            root_of[target] = root_of[n];
            kind_of[target] = kind_of[n];
            queue.push_back(target);
          }
          continue;
        }
        out.push_back(make_finding(
            kRule, file, call.line, call.col, call.name.size(),
            "'" + fn.qname + "' calls '" + callee.qname + "' (" + g.nodes[target].file->rel +
                ":" + std::to_string(callee.line) +
                "), which is not annotated '// ppatc-lint: signal-safe' (cone of " + cone + ")",
            file.line_allows(call.line, kRule)));
      }
    }
  }
}

// ---- noexcept-escape --------------------------------------------------------

void rule_noexcept_escape(const CallGraph& g, std::vector<Finding>& out) {
  static const char* kRule = "noexcept-escape";
  std::vector<std::uint32_t> stamp(g.nodes.size(), 0);
  std::uint32_t gen = 0;
  std::vector<std::size_t> parent(g.nodes.size(), kNone);
  std::vector<std::size_t> queue;

  for (std::size_t r = 0; r < g.nodes.size(); ++r) {
    const FunctionDef& root = *g.nodes[r].def;
    if (!root.is_noexcept || root.is_parallel_lambda) continue;
    // A try anywhere in the body is treated as covering it: conservative
    // toward silence here, but a function-granular approximation is the best
    // a token stream supports, and every real escape we can prove has none.
    if (root.has_try) continue;
    const FileIndex& root_file = *g.nodes[r].file;

    ++gen;
    stamp[r] = gen;
    parent[r] = kNone;
    queue.clear();
    queue.push_back(r);
    bool reported = false;
    for (std::size_t qi = 0; qi < queue.size() && !reported; ++qi) {
      const std::size_t n = queue[qi];
      const FunctionDef& fn = *g.nodes[n].def;
      const auto report = [&](const std::string& what) {
        std::string msg = "noexcept '" + root.qname + "' " + what;
        if (n != r) msg += " via " + path_of(g, parent, n);
        msg += "; an escape here is std::terminate";
        out.push_back(make_finding(kRule, root_file, root.line, root.col, root.name.size(),
                                   std::move(msg),
                                   root_file.line_allows(root.line, kRule)));
        reported = true;
      };
      if (!fn.throw_lines.empty()) {
        report("can reach 'throw' at " + g.nodes[n].file->rel + ":" +
               std::to_string(fn.throw_lines.front()) + " in '" + fn.qname + "'");
        break;
      }
      for (const CallSite& call : fn.calls) {
        const std::vector<std::size_t> targets = targets_of(g, n, call);
        if (targets.empty()) {
          if (contains(throwing_externals(), call.name)) {
            report("reaches throwing '" + call.name + "(...)' at " + g.nodes[n].file->rel +
                   ":" + std::to_string(call.line) + " in '" + fn.qname + "'");
            break;
          }
          continue;
        }
        for (const std::size_t target : targets) {
          const FunctionDef& callee = *g.nodes[target].def;
          // noexcept callees terminate instead of propagating and are audited
          // as their own roots; try-holders are barriers.
          if (callee.is_noexcept || callee.has_try || callee.is_parallel_lambda) continue;
          if (stamp[target] == gen) continue;
          stamp[target] = gen;
          parent[target] = n;
          queue.push_back(target);
        }
      }
    }
  }
}

// ---- realtime-purity --------------------------------------------------------

bool realtime_exempt_file(const Config& config, const std::string& rel) {
  for (const std::string& suffix : config.realtime_exempt) {
    if (rel.size() >= suffix.size() &&
        rel.compare(rel.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

void rule_realtime_purity(const std::vector<FileIndex>& files, const CallGraph& g,
                          const Config& config, std::vector<Finding>& out) {
  static const char* kRule = "realtime-purity";
  (void)files;
  std::vector<std::pair<std::size_t, std::string>> roots;
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    const FunctionDef& fn = *g.nodes[n].def;
    if (realtime_exempt_file(config, g.nodes[n].file->rel)) continue;
    if (fn.is_parallel_lambda) {
      roots.emplace_back(n, "parallel region '" + fn.qname + "'");
      continue;
    }
    for (const std::string& name : config.realtime_roots) {
      if (fn.name == name) {
        roots.emplace_back(n, "realtime entry '" + fn.qname + "'");
        break;
      }
    }
  }
  if (roots.empty()) return;

  std::vector<char> visited(g.nodes.size(), 0);
  std::vector<std::size_t> parent(g.nodes.size(), kNone);
  std::vector<std::size_t> root_of(g.nodes.size(), kNone);
  std::vector<const std::string*> label_of(g.nodes.size(), nullptr);
  std::vector<std::size_t> queue;
  for (const auto& [n, label] : roots) {
    if (visited[n] != 0) continue;
    visited[n] = 1;
    root_of[n] = n;
    queue.push_back(n);
  }
  // Labels live in `roots`; bind pointers after it stops reallocating.
  for (const auto& [n, label] : roots) {
    if (label_of[n] == nullptr) label_of[n] = &label;
  }

  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t n = queue[qi];
    const FunctionDef& fn = *g.nodes[n].def;
    const FileIndex& file = *g.nodes[n].file;
    if (realtime_exempt_file(config, file.rel)) continue;
    std::string cone = *label_of[root_of[n]];
    if (root_of[n] != n) cone += " via " + path_of(g, parent, n);

    if (file.line_allows(fn.line, kRule)) {
      out.push_back(make_finding(kRule, file, fn.line, fn.col, fn.name.size(),
                                 "'" + fn.qname + "' opts out of the realtime cone of " + cone,
                                 true));
      continue;
    }

    for (const HazardToken& h : fn.hazards) {
      if (!realtime_banned(h.text)) continue;
      if (h.first_call_only) continue;  // static/thread_local lazy init runs once
      out.push_back(make_finding(kRule, file, h.line, h.col, h.text.size(),
                                 std::string{"'"} + h.text + "' " + realtime_verb(h.text) +
                                     " on a realtime path in '" + fn.qname + "' (cone of " +
                                     cone + ")",
                                 file.line_allows(h.line, kRule)));
    }

    for (const CallSite& call : fn.calls) {
      if (realtime_banned(call.name)) continue;  // flagged as a hazard token
      if (call.first_call_only) continue;        // lazy-init escape: edge pruned
      if (call.member && call.name == "lock") {
        out.push_back(make_finding(kRule, file, call.line, call.col, call.name.size(),
                                   "'.lock()' blocks on a realtime path in '" + fn.qname +
                                       "' (cone of " + cone + ")",
                                   file.line_allows(call.line, kRule)));
        continue;
      }
      const std::vector<std::size_t> targets = targets_of(g, n, call);
      if (targets.empty()) continue;  // externals: realtime only audits internals
      if (file.line_allows(call.line, kRule)) {
        // allow() on a call line prunes the descent — counted, so the pruned
        // subtree stays visible in the report.
        out.push_back(make_finding(kRule, file, call.line, call.col, call.name.size(),
                                   "descent into '" + call.name +
                                       "' suppressed on a realtime path in '" + fn.qname +
                                       "' (cone of " + cone + ")",
                                   true));
        continue;
      }
      for (const std::size_t target : targets) {
        if (visited[target] != 0) continue;
        visited[target] = 1;
        parent[target] = n;
        root_of[target] = root_of[n];
        queue.push_back(target);
      }
    }
  }
}

}  // namespace

void run_interproc_rules(const std::vector<FileIndex>& files, const CallGraph& graph,
                         const Config& config, std::vector<Finding>& out) {
  if (rule_enabled(config, "signal-safety")) rule_signal_safety(files, graph, out);
  if (rule_enabled(config, "noexcept-escape")) rule_noexcept_escape(graph, out);
  if (rule_enabled(config, "realtime-purity")) rule_realtime_purity(files, graph, config, out);
}

}  // namespace ppatc::lint::detail
