// Scope-aware rule families: parallel-safety, units-escape, lifetime.
//
// All three consume the lexer.hpp token stream and build small per-site
// symbol tables (lambda captures/params/locals, scoped unwrap tags, function
// body locals). They are conservative by construction: a site is flagged
// only when the tokens pin down the violating shape, so the approximation of
// not running a real C++ front end costs recall, never precision on the
// project's code style.
#include <algorithm>
#include <array>
#include <map>
#include <regex>
#include <set>
#include <string>

#include "dataflow.hpp"
#include "rules_internal.hpp"

namespace ppatc::lint::detail {

namespace {

using Tokens = std::vector<Token>;

bool is_assign_op(const std::string& t) {
  static const std::set<std::string> kOps{"=",  "+=", "-=",  "*=",  "/=", "%=",
                                          "&=", "|=", "^=", "<<=", ">>=", "++", "--"};
  return kOps.contains(t);
}

bool is_member_access(const std::string& t) { return t == "." || t == "->"; }

// Keywords that can precede an identifier without making it a declaration.
bool is_decl_blocking_keyword(const std::string& t) {
  static const std::set<std::string> kKw{"return", "delete", "new",    "else",   "case",
                                         "goto",   "break",  "continue", "co_return",
                                         "throw",  "sizeof", "using",  "typedef", "namespace",
                                         "if",     "while",  "do",     "switch", "operator"};
  return kKw.contains(t);
}

void push_unique(std::vector<Finding>& out, Finding f) {
  const bool dup = std::any_of(out.begin(), out.end(), [&](const Finding& g) {
    return g.rule == f.rule && g.file == f.file && g.line == f.line && g.message == f.message;
  });
  if (!dup) out.push_back(std::move(f));
}

// ---- parallel-safety --------------------------------------------------------
//
// The runtime's determinism contract: a body handed to parallel_for /
// parallel_for_chunks / parallel_reduce / parallel_invoke must be chunk-pure.
// It may read anything, but it may write only (a) its own locals and
// parameters and (b) index-addressed slots (out[i], partials[r.index]) of
// pre-sized buffers — never a bare by-reference capture, and never under a
// mutex (serialization hides the nondeterministic interleaving instead of
// removing it).

struct LambdaInfo {
  bool default_ref = false;     ///< [&]
  bool default_copy = false;    ///< [=]
  bool captures_this = false;   ///< [this] / [*this]
  std::set<std::string> ref_captures;
  std::set<std::string> value_captures;
  std::set<std::string> params;
  std::size_t body_begin = 0;  ///< index of '{'
  std::size_t body_end = 0;    ///< index of matching '}'
  bool valid = false;
};

// Parses a lambda whose '[' is at `intro`. Returns info with valid=false if
// the shape does not pan out (e.g. it was a subscript after all).
LambdaInfo parse_lambda(const Tokens& toks, std::size_t intro) {
  LambdaInfo info;
  const std::size_t cap_end = match_forward(toks, intro);
  if (cap_end >= toks.size()) return info;
  // Captures: entries split on top-level commas.
  std::size_t entry = intro + 1;
  while (entry < cap_end) {
    std::size_t e = entry;
    int depth = 0;
    while (e < cap_end) {
      const std::string& t = toks[e].text;
      if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
      if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
      if (t == "," && depth == 0) break;
      ++e;
    }
    if (e > entry) {
      const std::string& first = toks[entry].text;
      if (first == "&" && e == entry + 1) {
        info.default_ref = true;
      } else if (first == "=" && e == entry + 1) {
        info.default_copy = true;
      } else if (first == "this" || (first == "*" && toks[entry + 1].text == "this")) {
        info.captures_this = true;
      } else if (first == "&" && toks[entry + 1].kind == TokKind::kIdent) {
        info.ref_captures.insert(toks[entry + 1].text);
      } else if (toks[entry].kind == TokKind::kIdent) {
        info.value_captures.insert(first);
      }
    }
    entry = e + 1;
  }
  // Optional parameter list.
  std::size_t i = cap_end + 1;
  if (i < toks.size() && toks[i].text == "(") {
    const std::size_t par_end = match_forward(toks, i);
    if (par_end >= toks.size()) return info;
    std::size_t p = i + 1;
    while (p < par_end) {
      std::size_t e = p;
      int depth = 0;
      std::size_t eq = 0;  // first top-level '=' (default argument)
      while (e < par_end) {
        const std::string& t = toks[e].text;
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
        if (t == "," && depth == 0) break;
        if (t == "=" && depth == 0 && eq == 0) eq = e;
        ++e;
      }
      const std::size_t limit = eq != 0 ? eq : e;
      for (std::size_t k = limit; k > p;) {
        --k;
        if (toks[k].kind == TokKind::kIdent) {
          info.params.insert(toks[k].text);
          break;
        }
      }
      p = e + 1;
    }
    i = par_end + 1;
  }
  // Skip specifiers (mutable, noexcept, -> T) up to the body.
  while (i < toks.size() && toks[i].text != "{") {
    if (toks[i].text == ";" || toks[i].text == ")") return info;  // not a lambda body
    ++i;
  }
  if (i >= toks.size()) return info;
  info.body_begin = i;
  info.body_end = match_forward(toks, i);
  info.valid = info.body_end < toks.size();
  return info;
}

// Collects identifiers declared inside [begin, end): `Type name =/;/{`,
// structured bindings, and nested-lambda parameters.
std::set<std::string> collect_locals(const Tokens& toks, std::size_t begin, std::size_t end) {
  std::set<std::string> locals;
  for (std::size_t k = begin; k < end; ++k) {
    if (toks[k].kind != TokKind::kIdent) {
      // Structured binding: auto [a, b] = / auto& [a, b] =
      if (toks[k].text == "[" && k >= 1 &&
          (toks[k - 1].text == "auto" || ((toks[k - 1].text == "&" || toks[k - 1].text == "&&") &&
                                          k >= 2 && toks[k - 2].text == "auto"))) {
        const std::size_t close = match_forward(toks, k);
        for (std::size_t j = k + 1; j < close && j < end; ++j) {
          if (toks[j].kind == TokKind::kIdent) locals.insert(toks[j].text);
        }
      }
      // Nested lambda: its parameters scope over part of this body.
      if (toks[k].text == "[" && k >= 1 &&
          (toks[k - 1].text == "(" || toks[k - 1].text == "," || toks[k - 1].text == "=" ||
           toks[k - 1].text == "return")) {
        const LambdaInfo nested = parse_lambda(toks, k);
        if (nested.valid) {
          for (const std::string& p : nested.params) locals.insert(p);
        }
      }
      continue;
    }
    if (k + 1 >= end || k == begin) continue;
    const std::string& next = toks[k + 1].text;
    if (next != "=" && next != ";" && next != "{") continue;
    const Token& prev = toks[k - 1];
    const bool prev_declish =
        (prev.kind == TokKind::kIdent && !is_decl_blocking_keyword(prev.text)) ||
        prev.text == "&" || prev.text == "*" || prev.text == ">" || prev.text == "&&";
    if (prev_declish) locals.insert(toks[k].text);
  }
  return locals;
}

// Walks the member-access chain ending at token index `k` (an identifier)
// back to its base identifier; `from_call_or_index` reports whether the
// chain passes through a call/subscript result (pts[i].x, f(x).y).
std::size_t chain_base(const Tokens& toks, std::size_t k, bool& from_call_or_index) {
  from_call_or_index = false;
  while (k >= 2 && is_member_access(toks[k - 1].text)) {
    const std::string& before = toks[k - 2].text;
    if (before == ")" || before == "]") {
      from_call_or_index = true;
      return k;
    }
    if (toks[k - 2].kind != TokKind::kIdent) return k;
    k -= 2;
  }
  return k;
}

const std::set<std::string>& sync_primitives() {
  static const std::set<std::string> kSync{
      "mutex",        "shared_mutex",      "recursive_mutex",        "timed_mutex",
      "lock_guard",   "unique_lock",       "scoped_lock",            "shared_lock",
      "condition_variable", "condition_variable_any", "call_once",  "once_flag",
      "atomic",       "atomic_ref",        "atomic_flag",            "semaphore",
      "counting_semaphore", "binary_semaphore", "barrier",          "latch"};
  return kSync;
}

const std::set<std::string>& thread_identity_apis() {
  static const std::set<std::string> kApis{"this_thread", "hardware_concurrency", "get_id",
                                           "sleep_for",   "sleep_until"};
  return kApis;
}

const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kMut{"push_back", "emplace_back", "pop_back", "insert",
                                          "emplace",   "try_emplace",  "erase",    "clear",
                                          "resize",    "assign",       "append"};
  return kMut;
}

void check_lambda_body(const std::string& rel, const Tokens& toks, const LambdaInfo& lam,
                       std::vector<Finding>& out) {
  const std::set<std::string> locals =
      collect_locals(toks, lam.body_begin + 1, lam.body_end);
  const auto is_chunk_local = [&](const std::string& name) {
    return locals.contains(name) || lam.params.contains(name) ||
           lam.value_captures.contains(name);
  };
  for (std::size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
    const Token& tok = toks[k];
    if (tok.kind != TokKind::kIdent) {
      // Prefix ++/-- on a bare identifier.
      if ((tok.text == "++" || tok.text == "--") && k + 1 < lam.body_end &&
          toks[k + 1].kind == TokKind::kIdent && !is_member_access(toks[k - 1].text) &&
          (k + 2 >= lam.body_end || (toks[k + 2].text != "." && toks[k + 2].text != "->" &&
                                     toks[k + 2].text != "["))) {
        const std::string& name = toks[k + 1].text;
        if (!is_chunk_local(name)) {
          push_unique(out, {"parallel-safety", rel, toks[k + 1].line,
                            "increment of shared '" + name +
                                "' inside a parallel region; the determinism contract requires "
                                "chunk-pure bodies that write only locals and index-addressed "
                                "output slots",
                            false, false});
        }
      }
      continue;
    }
    // Synchronization primitives and thread-identity APIs.
    if (sync_primitives().contains(tok.text)) {
      push_unique(out, {"parallel-safety", rel, tok.line,
                        "synchronization primitive '" + tok.text +
                            "' inside a parallel region: serializing a shared write hides the "
                            "nondeterministic interleaving instead of removing it; accumulate "
                            "per-chunk partials and combine them in chunk order",
                        false, false});
      continue;
    }
    if (thread_identity_apis().contains(tok.text)) {
      push_unique(out, {"parallel-safety", rel, tok.line,
                        "thread-identity/scheduling API '" + tok.text +
                            "' inside a parallel region makes results depend on which worker "
                            "runs the chunk",
                        false, false});
      continue;
    }
    if (k + 1 >= lam.body_end) continue;
    const std::string& next = toks[k + 1].text;
    // Mutating container method on a shared object: shared.push_back(...).
    if (is_member_access(next) && k + 3 < lam.body_end &&
        mutating_methods().contains(toks[k + 2].text) && toks[k + 3].text == "(" &&
        !is_member_access(toks[k - 1].text)) {
      if (!is_chunk_local(tok.text)) {
        push_unique(out, {"parallel-safety", rel, tok.line,
                          "mutating call '" + tok.text + "." + toks[k + 2].text +
                              "(...)' on a shared object inside a parallel region; append-style "
                              "mutation is order-dependent — write to a pre-sized, "
                              "index-addressed slot instead",
                          false, false});
      }
      continue;
    }
    // Assignment whose target is a bare identifier or a member chain rooted
    // at one. Subscripted targets (out[i] = ...) never reach here: '=' then
    // follows ']', not an identifier.
    if (!is_assign_op(next)) continue;
    bool via_call_or_index = false;
    const std::size_t base = chain_base(toks, k, via_call_or_index);
    if (via_call_or_index) continue;  // pts[i].x = ... — indexed slot, fine
    if (base != k && toks[base].kind != TokKind::kIdent) continue;
    if (base == k && is_member_access(toks[k - 1].text)) continue;  // f(x).y = handled above
    const std::string& name = toks[base].text;
    if (is_chunk_local(name)) continue;
    if (toks[base].kind != TokKind::kIdent) continue;
    push_unique(out, {"parallel-safety", rel, tok.line,
                      "write to shared '" + name +
                          "' inside a parallel region is not a chunk-local output slot; the "
                          "determinism contract requires chunk-pure bodies (write locals or "
                          "index-addressed pre-sized buffers only)",
                      false, false});
  }
}

}  // namespace

void rule_parallel_safety(const std::string& rel, const Tokens& toks,
                          std::vector<Finding>& out) {
  static const std::set<std::string> kEntryPoints{"parallel_for", "parallel_for_chunks",
                                                  "parallel_reduce", "parallel_invoke"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !kEntryPoints.contains(toks[i].text)) continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // A definition/declaration has a type token directly before the name
    // (`void parallel_for_chunks(...)`); a call site is preceded by `::`,
    // an operator, or a statement boundary.
    if (i > 0 && (toks[i - 1].kind == TokKind::kIdent || toks[i - 1].text == ">" ||
                  toks[i - 1].text == "&" || toks[i - 1].text == "*")) {
      continue;
    }
    const std::size_t args_end = match_forward(toks, i + 1);
    if (args_end >= toks.size()) continue;
    for (std::size_t j = i + 2; j < args_end; ++j) {
      if (toks[j].text != "[") continue;
      if (!(toks[j - 1].text == "(" || toks[j - 1].text == ",")) continue;
      const LambdaInfo lam = parse_lambda(toks, j);
      if (!lam.valid) continue;
      check_lambda_body(rel, toks, lam, out);
      j = lam.body_end;  // nested parallel_* calls are matched by the outer loop
    }
  }
}

// ---- units-escape -----------------------------------------------------------
//
// Dataflow over unwrapped quantities. A local initialized from a pure
// `[units::]in_<unit>(...)` call carries a (dimension, unit) tag for the
// rest of its scope. Tags make three bug shapes visible that the type system
// can no longer see after the unwrap:
//   * a + b / a - b / comparisons where the tags disagree,
//   * a tagged value handed to a units factory of another dimension or unit,
//   * any raw .value() unwrap (the project's Quantity exposes conversions
//     only through named in_*() accessors; .value() is foreign code smell).

namespace {

// The (dimension, unit) vocabulary is shared with the dataflow generation
// (dataflow.hpp: units_vocabulary / unwrap_accessor / unit_factory), so the
// brace-local and cross-function rules agree on what in_*() means. The local
// names stay as thin aliases to keep this rule's code reading as before.
using UnwrapInfo = UnitDim;

const UnwrapInfo* unwrap_for(const std::string& fn) { return unwrap_accessor(fn); }

const UnwrapInfo* factory_for(const std::string& fn) { return unit_factory(fn); }

struct TaggedLocal {
  UnwrapInfo info;
  int depth = 0;  ///< brace depth at declaration; dropped when scope closes
};

bool is_comparison(const std::string& t) {
  return t == "<" || t == ">" || t == "<=" || t == ">=" || t == "==" || t == "!=";
}

// True when tokens[k] names a bare tagged local usable as an operand: no
// member access before it, no call/member/subscript after it.
bool bare_operand(const Tokens& toks, std::size_t k) {
  if (toks[k].kind != TokKind::kIdent) return false;
  if (k > 0 && (is_member_access(toks[k - 1].text) || toks[k - 1].text == "::")) return false;
  if (k + 1 < toks.size()) {
    const std::string& n = toks[k + 1].text;
    if (n == "(" || n == "[" || n == "." || n == "->" || n == "::") return false;
  }
  return true;
}

}  // namespace

void rule_units_escape(const std::string& rel, const Tokens& toks, std::vector<Finding>& out) {
  std::map<std::string, TaggedLocal> tagged;
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      ++depth;
      continue;
    }
    if (t == "}") {
      --depth;
      for (auto it = tagged.begin(); it != tagged.end();) {
        it = it->second.depth > depth ? tagged.erase(it) : std::next(it);
      }
      continue;
    }
    // Raw .value() unwrap.
    if (toks[i].kind == TokKind::kIdent && t == "value" && i >= 1 &&
        is_member_access(toks[i - 1].text) && i + 2 < toks.size() && toks[i + 1].text == "(" &&
        toks[i + 2].text == ")") {
      push_unique(out, {"units-escape", rel, toks[i].line,
                        "raw .value() unwrap escapes the unit type system; convert through a "
                        "named in_*() accessor so the unit is visible at the call site (or "
                        "suppress with a rationale if this is not a ppatc Quantity)",
                        false, false});
      continue;
    }
    if (toks[i].kind != TokKind::kIdent) continue;
    // Declaration of a tagged local: double|auto name = [units::]in_u(...) ;
    if ((t == "double" || t == "float" || t == "auto") && i + 2 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent && toks[i + 2].text == "=") {
      std::size_t r = i + 3;
      if (r + 1 < toks.size() && toks[r].text == "units" && toks[r + 1].text == "::") r += 2;
      if (r + 1 < toks.size() && toks[r].kind == TokKind::kIdent && toks[r + 1].text == "(") {
        const UnwrapInfo* info = unwrap_for(toks[r].text);
        if (info != nullptr) {
          const std::size_t close = match_forward(toks, r + 1);
          // Pure unwrap: the call is the whole initializer. Anything scaled
          // or combined afterwards no longer carries the unit.
          if (close + 1 < toks.size() && toks[close + 1].text == ";") {
            tagged[toks[i + 1].text] = {*info, depth};
            i = close;
            continue;
          }
        }
      }
      // Plain re-declaration shadows any outer tag.
      tagged.erase(toks[i + 1].text);
      continue;
    }
    // Plain reassignment invalidates a tag (the RHS may be anything).
    if (i + 1 < toks.size() && toks[i + 1].text == "=" && bare_operand(toks, i)) {
      const auto it = tagged.find(t);
      if (it != tagged.end() &&
          !(i > 0 && (toks[i - 1].kind == TokKind::kIdent || toks[i - 1].text == "&"))) {
        tagged.erase(it);
        continue;
      }
    }
    // Mixing: a (+|-|comparison) b with disagreeing tags.
    if (i + 2 < toks.size() && bare_operand(toks, i)) {
      const std::string& op = toks[i + 1].text;
      if ((op == "+" || op == "-" || is_comparison(op)) && bare_operand(toks, i + 2)) {
        const auto a = tagged.find(t);
        const auto b = tagged.find(toks[i + 2].text);
        if (a != tagged.end() && b != tagged.end()) {
          const UnwrapInfo& ia = a->second.info;
          const UnwrapInfo& ib = b->second.info;
          if (std::string{ia.dim} != ib.dim) {
            push_unique(out, {"units-escape", rel, toks[i].line,
                              "'" + a->first + "' (" + ia.dim + ", unwrapped via in_" + ia.unit +
                                  ") and '" + b->first + "' (" + std::string{ib.dim} +
                                  ", via in_" + ib.unit + ") mix different dimensions in raw " +
                                  "double arithmetic",
                              false, false});
          } else if (std::string{ia.unit} != ib.unit) {
            push_unique(out, {"units-escape", rel, toks[i].line,
                              "'" + a->first + "' (in_" + ia.unit + ") and '" + b->first +
                                  "' (in_" + ib.unit +
                                  ") carry the same dimension in different units; convert both "
                                  "through the same in_*() accessor before combining",
                              false, false});
          }
        }
      }
    }
    // Factory misuse: [units::]factory(tagged) with a disagreeing tag.
    const bool qualified = i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "units";
    if ((qualified || (i == 0 || (!is_member_access(toks[i - 1].text) &&
                                  toks[i - 1].text != "::"))) &&
        i + 3 < toks.size() && toks[i + 1].text == "(" && bare_operand(toks, i + 2) &&
        toks[i + 3].text == ")") {
      const UnwrapInfo* fac = factory_for(t);
      if (fac != nullptr) {
        const auto arg = tagged.find(toks[i + 2].text);
        if (arg != tagged.end()) {
          const UnwrapInfo& ia = arg->second.info;
          if (std::string{ia.dim} != fac->dim) {
            push_unique(out, {"units-escape", rel, toks[i].line,
                              "'" + arg->first + "' was unwrapped as " + ia.dim + " (in_" +
                                  ia.unit + ") but is passed to units::" + t +
                                  "() which constructs " + fac->dim,
                              false, false});
          } else if (std::string{ia.unit} != fac->unit) {
            push_unique(out, {"units-escape", rel, toks[i].line,
                              "'" + arg->first + "' holds in_" + ia.unit + " but units::" + t +
                                  "() re-wraps it as " + fac->unit +
                                  "; round-trip through matching accessor/factory pairs",
                              false, false});
          }
        }
      }
    }
  }
}

// ---- lifetime ---------------------------------------------------------------
//
// Functions whose return type is a view (string_view, span) or a reference
// must not return a body-local or a temporary: the referent dies when the
// function returns. Statics are exempt (they outlive the call), as are
// parameters and members (the caller owns those lifetimes).

namespace {

enum class ReturnKind { kView, kReference };

struct FunctionSite {
  ReturnKind kind;
  std::size_t body_first_line;  ///< 0-based index of the line after '{'
  std::size_t body_last_line;   ///< 0-based, inclusive
};

// Matches single-line function signatures up to the opening parenthesis.
const std::regex& signature_re() {
  static const std::regex re{
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:(?:static|inline|constexpr|friend|virtual)\s+)*)"
      R"(((?:std::)?string_view|std::span<[^;=]*>|(?:const\s+)?[A-Za-z_][\w:]*(?:<[^;=]*>)?\s*&)\s+)"
      R"(([A-Za-z_]\w*)\s*\()"};
  return re;
}

}  // namespace

void rule_lifetime(const std::string& rel, const FileText& text, std::vector<Finding>& out) {
  for (std::size_t li = 0; li < text.code.size(); ++li) {
    std::smatch m;
    if (!std::regex_search(text.code[li], m, signature_re())) continue;
    const std::string ret = m[1].str();
    const bool is_ref = ret.back() == '&';
    const ReturnKind kind = is_ref ? ReturnKind::kReference : ReturnKind::kView;
    if (m[2].str() == "operator") continue;
    // Walk from the parameter '(' to the body '{' (a ';' first means this is
    // only a declaration). Bounded lookahead keeps pathological files cheap.
    std::size_t pos = static_cast<std::size_t>(m.position(0)) + m.length(0) - 1;
    int paren = 0;
    bool found_body = false;
    std::size_t body_line = li;
    std::size_t scan_line = li;
    std::size_t scan_pos = pos;
    for (; scan_line < text.code.size() && scan_line <= li + 6 && !found_body; ++scan_line) {
      const std::string& line = text.code[scan_line];
      for (std::size_t c = scan_line == li ? scan_pos : 0; c < line.size(); ++c) {
        if (line[c] == '(') ++paren;
        if (line[c] == ')') --paren;
        if (paren == 0) {
          if (line[c] == ';') {
            found_body = false;
            scan_line = text.code.size();
            break;
          }
          if (line[c] == '{') {
            found_body = true;
            body_line = scan_line;
            break;
          }
          if (line[c] == '=') break;  // deleted/defaulted or assignment: skip
        }
      }
    }
    if (!found_body) continue;
    // Body extent by brace counting from the opening line.
    int depth = 0;
    std::size_t end_line = body_line;
    for (std::size_t bl = body_line; bl < text.code.size(); ++bl) {
      for (char c : text.code[bl]) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (depth <= 0) {
        end_line = bl;
        break;
      }
      end_line = bl;
    }
    // Returned expressions.
    static const std::regex return_ident_re{R"(\breturn\s+([A-Za-z_]\w*)\s*;)"};
    static const std::regex return_temp_re{
        R"(\breturn\s+(?:std::)?(string|vector<[^;]*>|ostringstream)\s*[({])"};
    for (std::size_t bl = body_line; bl <= end_line; ++bl) {
      const std::string& line = text.code[bl];
      std::smatch rm;
      if (kind == ReturnKind::kView && std::regex_search(line, rm, return_temp_re)) {
        out.push_back({"lifetime", rel, static_cast<int>(bl + 1),
                       "returns a view over a temporary std::" + rm[1].str() +
                           "; the buffer is destroyed before the caller can look at it",
                       false, false});
        continue;
      }
      if (!std::regex_search(line, rm, return_ident_re)) continue;
      const std::string name = rm[1].str();
      if (name == "nullptr" || name == "true" || name == "false" || name == "this") continue;
      // Is `name` declared as a body-local owning object? Require a
      // `Type name =/;/{/(` declaration inside the body that is neither
      // static nor a reference/pointer alias.
      const std::regex decl_re{R"((?:^|[(;{]\s*|\s)(?:const\s+)?)"
                               R"(([A-Za-z_][\w:]*(?:<[^;]*>)?)\s+()" +
                               name + R"()\s*[=({;])"};
      for (std::size_t dl = body_line; dl < bl; ++dl) {
        const std::string& decl_line = text.code[dl];
        std::smatch dm;
        if (!std::regex_search(decl_line, dm, decl_re)) continue;
        const std::string type = dm[1].str();
        // static / thread_local locals have static(-like) storage duration
        // and outlive the call.
        if (type == "return" || decl_line.find("static") != std::string::npos ||
            decl_line.find("thread_local") != std::string::npos) {
          continue;
        }
        // Reference/pointer locals alias something that may outlive the body.
        const std::size_t name_pos = static_cast<std::size_t>(dm.position(2));
        const std::string before = decl_line.substr(0, name_pos);
        if (before.find('&') != std::string::npos || before.find('*') != std::string::npos)
          continue;
        out.push_back({"lifetime", rel, static_cast<int>(bl + 1),
                       "returns body-local '" + name + "' (declared line " +
                           std::to_string(dl + 1) + ") from a function returning a " +
                           (kind == ReturnKind::kView ? std::string{"view"}
                                                      : std::string{"reference"}) +
                           "; the local dies at end of scope",
                       false, false});
        break;
      }
    }
    li = end_line;  // resume after this function
  }
}

}  // namespace ppatc::lint::detail
