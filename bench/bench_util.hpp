// Shared formatting helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper and, where the paper states a
// number, prints it next to the measured value.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ppatc/obs/metrics.hpp"

namespace ppatc::bench {

/// Path of the requested ppatc::obs metrics sidecar (BENCH_METRICS_OUT), or
/// nullptr when none was requested.
inline const char* metrics_sidecar_path() {
  const char* path = std::getenv("BENCH_METRICS_OUT");
  return (path != nullptr && path[0] != '\0') ? path : nullptr;
}

/// Enables metrics collection iff a sidecar was requested. Call before the
/// benchmarked work; pair with write_metrics_sidecar() at the end.
inline void enable_metrics_sidecar() {
  if (metrics_sidecar_path() != nullptr) obs::set_metrics_enabled(true);
}

/// Writes the accumulated obs metrics to the requested sidecar, if any.
inline void write_metrics_sidecar() {
  if (const char* path = metrics_sidecar_path()) {
    obs::write_metrics_json(path);
    std::fprintf(stderr, "wrote metrics sidecar %s\n", path);
  }
}

inline void title(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& what) { std::printf("\n--- %s ---\n", what.c_str()); }

/// Prints a measured-vs-paper row with the relative deviation.
inline void compare_row(const std::string& label, double measured, double paper,
                        const std::string& unit) {
  const double dev = paper != 0.0 ? (measured / paper - 1.0) * 100.0 : 0.0;
  std::printf("  %-44s %12.4g %-10s (paper: %.4g, %+.1f%%)\n", label.c_str(), measured,
              unit.c_str(), paper, dev);
}

inline void value_row(const std::string& label, double value, const std::string& unit) {
  std::printf("  %-44s %12.4g %-10s\n", label.c_str(), value, unit.c_str());
}

inline void text_row(const std::string& label, const std::string& value) {
  std::printf("  %-44s %s\n", label.c_str(), value.c_str());
}

}  // namespace ppatc::bench
