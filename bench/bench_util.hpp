// Shared helpers for the reproduction benches. Each bench binary regenerates
// one table or figure of the paper and, where the paper states a number,
// prints it next to the measured value.
//
// Every bench also records what it printed into a ppatc::obs::RunManifest
// when BENCH_MANIFEST_OUT names an output file: the printing helpers below
// (compare_row / value_row / text_row / record*) mirror each row into the
// manifest under a "<section> / <label>" key, and finish_manifest() attaches
// the final metrics snapshot + span rollup and writes the sorted-key JSON.
// Committed golden manifests live in bench/golden/; `ppatc-report check`
// gates every run against them (registered as ctest cases).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/report.hpp"
#include "ppatc/obs/trace.hpp"

namespace ppatc::bench {

/// Path of the requested ppatc::obs metrics sidecar (BENCH_METRICS_OUT), or
/// nullptr when none was requested ("" and "0" both mean "off").
inline const char* metrics_sidecar_path() {
  const char* path = std::getenv("BENCH_METRICS_OUT");
  if (path == nullptr || path[0] == '\0') return nullptr;
  if (path[0] == '0' && path[1] == '\0') return nullptr;
  return path;
}

/// Enables metrics collection iff a sidecar was requested. Call before the
/// benchmarked work; pair with write_metrics_sidecar() at the end.
inline void enable_metrics_sidecar() {
  if (metrics_sidecar_path() != nullptr) obs::set_metrics_enabled(true);
}

/// Writes the accumulated obs metrics to the requested sidecar, if any.
inline void write_metrics_sidecar() {
  if (const char* path = metrics_sidecar_path()) {
    obs::write_metrics_json(path);
    std::fprintf(stderr, "wrote metrics sidecar %s\n", path);
  }
}

// ---------------------------------------------------------------------------
// Run-manifest plumbing (BENCH_MANIFEST_OUT).

namespace detail {

inline std::unique_ptr<obs::RunManifest>& manifest_slot() {
  static std::unique_ptr<obs::RunManifest> slot;
  return slot;
}

inline std::string& manifest_section() {
  static std::string section;
  return section;
}

/// Manifest keys are "<current section> / <label>" so repeated labels in
/// different sections (e.g. the two Table II columns) stay unique.
inline std::string manifest_key(const std::string& label) {
  const std::string& section = manifest_section();
  return section.empty() ? label : section + " / " + label;
}

}  // namespace detail

/// The active run manifest, or nullptr when BENCH_MANIFEST_OUT is unset.
inline obs::RunManifest* manifest() { return detail::manifest_slot().get(); }

/// Starts the run manifest for `artifact` when BENCH_MANIFEST_OUT is set —
/// call first thing in main(), before the modelled work, because it also
/// switches metrics and tracing on so the final snapshot covers the whole
/// run. Provenance (git SHA, UTC timestamp, thread count) is injected by the
/// caller via BENCH_GIT_SHA / BENCH_TIMESTAMP_UTC / PPATC_THREADS; the
/// library never reads a wall clock.
inline void begin_manifest(const std::string& artifact) {
  if (obs::manifest_out_path() == nullptr) return;
  detail::manifest_slot() = std::make_unique<obs::RunManifest>(artifact);
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  const auto env_or = [](const char* name, const char* fallback) {
    const char* v = std::getenv(name);
    return std::string{v != nullptr && v[0] != '\0' ? v : fallback};
  };
  obs::RunManifest& m = *detail::manifest_slot();
  m.set_provenance("git_sha", env_or("BENCH_GIT_SHA", "unknown"));
  m.set_provenance("timestamp_utc", env_or("BENCH_TIMESTAMP_UTC", "unknown"));
  m.set_provenance("threads", env_or("PPATC_THREADS", "default"));
}

/// Captures observability and writes the manifest (no-op without
/// BENCH_MANIFEST_OUT). Returns 0 so `return bench::finish_manifest();`
/// closes out a bench main().
inline int finish_manifest() {
  if (obs::RunManifest* m = manifest()) {
    m->capture_observability();
    const char* path = obs::manifest_out_path();
    m->write(path);
    std::fprintf(stderr, "wrote run manifest %s\n", path);
    detail::manifest_slot().reset();
  }
  return 0;
}

/// Records a units-typed (or pre-rendered) model-configuration input.
template <typename... Args>
inline void config(const std::string& key, Args&&... args) {
  if (obs::RunManifest* m = manifest()) m->set_config(key, std::forward<Args>(args)...);
}

/// Manifest-only numeric result (for table cells printed via raw printf).
inline void record(const std::string& label, double value, const std::string& unit,
                   obs::Tolerance tol = {}) {
  if (obs::RunManifest* m = manifest()) m->record(detail::manifest_key(label), value, unit, tol);
}

/// Manifest-only measured-vs-paper result.
inline void record_vs_paper(const std::string& label, double value, double paper,
                            const std::string& unit, obs::Tolerance tol = {}) {
  if (obs::RunManifest* m = manifest()) {
    m->record_vs_paper(detail::manifest_key(label), value, paper, unit, tol);
  }
}

/// Manifest-only textual verdict ("OK"/"VIOLATED"/...).
inline void record_text(const std::string& label, const std::string& value) {
  if (obs::RunManifest* m = manifest()) m->record_text(detail::manifest_key(label), value);
}

// ---------------------------------------------------------------------------
// Printing helpers (each also records into the active manifest).

inline void title(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
  detail::manifest_section().clear();
}

inline void section(const std::string& what) {
  std::printf("\n--- %s ---\n", what.c_str());
  detail::manifest_section() = what;
}

/// Prints a measured-vs-paper row with the relative deviation, and records it
/// (with the paper value pinned) into the manifest.
inline void compare_row(const std::string& label, double measured, double paper,
                        const std::string& unit, obs::Tolerance tol = {}) {
  const double dev = paper != 0.0 ? (measured / paper - 1.0) * 100.0 : 0.0;
  std::printf("  %-44s %12.4g %-10s (paper: %.4g, %+.1f%%)\n", label.c_str(), measured,
              unit.c_str(), paper, dev);
  record_vs_paper(label, measured, paper, unit, tol);
}

inline void value_row(const std::string& label, double value, const std::string& unit,
                      obs::Tolerance tol = {}) {
  std::printf("  %-44s %12.4g %-10s\n", label.c_str(), value, unit.c_str());
  record(label, value, unit, tol);
}

inline void text_row(const std::string& label, const std::string& value) {
  std::printf("  %-44s %s\n", label.c_str(), value.c_str());
  record_text(label, value);
}

}  // namespace ppatc::bench
