// Shared formatting helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper and, where the paper states a
// number, prints it next to the measured value.
#pragma once

#include <cstdio>
#include <string>

namespace ppatc::bench {

inline void title(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& what) { std::printf("\n--- %s ---\n", what.c_str()); }

/// Prints a measured-vs-paper row with the relative deviation.
inline void compare_row(const std::string& label, double measured, double paper,
                        const std::string& unit) {
  const double dev = paper != 0.0 ? (measured / paper - 1.0) * 100.0 : 0.0;
  std::printf("  %-44s %12.4g %-10s (paper: %.4g, %+.1f%%)\n", label.c_str(), measured,
              unit.c_str(), paper, dev);
}

inline void value_row(const std::string& label, double value, const std::string& unit) {
  std::printf("  %-44s %12.4g %-10s\n", label.c_str(), value, unit.c_str());
}

inline void text_row(const std::string& label, const std::string& value) {
  std::printf("  %-44s %s\n", label.c_str(), value.c_str());
}

}  // namespace ppatc::bench
