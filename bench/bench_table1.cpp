// Quantifies Table I: the benefit/challenge matrix of the three FET
// families (I_EFF, I_OFF, BEOL compatibility), evaluated from the
// virtual-source compact models at VDD = 0.7 V.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/device/library.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace dv = ppatc::device;

  bench::begin_manifest("table1");
  bench::title("Table I — FET benefits and challenges, quantified (VDD = 0.7 V, per um width)");

  const Voltage vdd = volts(0.7);
  bench::config("VDD", vdd);
  bench::config("width", "1 um");
  struct Row {
    const char* name;
    dv::VsParams card;
  };
  const Row rows[] = {
      {"Si FinFET (RVT)", dv::silicon_finfet(dv::Polarity::kNmos, dv::VtFlavor::kRvt)},
      {"Si FinFET (HVT)", dv::silicon_finfet(dv::Polarity::kNmos, dv::VtFlavor::kHvt)},
      {"CNFET (metallic removed)", dv::cnfet(dv::Polarity::kNmos)},
      {"CNFET (0.1% metallic)", [] {
         dv::CnfetOptions o;
         o.metallic_fraction = 1e-3;
         return dv::cnfet(dv::Polarity::kNmos, o);
       }()},
      {"IGZO FET", dv::igzo_fet()},
  };

  std::printf("  %-26s %12s %14s %10s %12s %6s\n", "device", "I_EFF uA/um", "I_OFF A/um",
              "Ion/Ioff", "proc. temp C", "BEOL?");
  for (const auto& row : rows) {
    const dv::VirtualSourceFet fet{row.card, 1.0};
    const double ieff = in_amperes(fet.effective_current(vdd)) * 1e6;
    const double ioff = in_amperes(fet.off_current(vdd));
    const double ion = in_amperes(fet.on_current(vdd));
    std::printf("  %-26s %12.1f %14.3e %10.2e %12.0f %6s\n", row.name, ieff, ioff, ion / ioff,
                in_kelvin(dv::process_temperature(row.card)) - 273.15,
                dv::beol_compatible(row.card) ? "yes" : "no");
    const std::string dev = row.name;
    bench::record(dev + " I_EFF", ieff, "uA/um");
    bench::record(dev + " I_OFF", ioff, "A/um");
    bench::record(dev + " Ion/Ioff", ion / ioff, "x");
    bench::record_text(dev + " BEOL-compatible", dv::beol_compatible(row.card) ? "yes" : "no");
  }

  bench::section("Table I orderings (must all hold)");
  const dv::VirtualSourceFet si{dv::silicon_finfet(dv::Polarity::kNmos, dv::VtFlavor::kRvt), 1.0};
  const dv::VirtualSourceFet cn{dv::cnfet(dv::Polarity::kNmos), 1.0};
  const dv::VirtualSourceFet igzo{dv::igzo_fet(), 1.0};
  bench::text_row("CNFET I_EFF > Si I_EFF (high performance)",
                  cn.effective_current(vdd) > si.effective_current(vdd) ? "OK" : "VIOLATED");
  bench::text_row("IGZO I_EFF < Si I_EFF (low mobility)",
                  igzo.effective_current(vdd) < si.effective_current(vdd) ? "OK" : "VIOLATED");
  bench::text_row("IGZO I_OFF ultra-low (< 1e-3 x Si HVT)",
                  in_amperes(igzo.off_current(vdd)) <
                          1e-3 * in_amperes(dv::VirtualSourceFet{dv::silicon_finfet(
                                                                     dv::Polarity::kNmos,
                                                                     dv::VtFlavor::kHvt),
                                                                 1.0}
                                                .off_current(vdd))
                      ? "OK"
                      : "VIOLATED");
  bench::text_row("Si bottom-tier only (>300 C processing)",
                  !dv::beol_compatible(dv::silicon_finfet(dv::Polarity::kNmos, dv::VtFlavor::kRvt))
                      ? "OK"
                      : "VIOLATED");

  bench::section("metallic-CNT fraction sweep (the Table I CNFET challenge)");
  std::printf("  %-14s %14s %12s\n", "fraction", "I_OFF A/um", "Ion/Ioff");
  for (const double f : {0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    dv::CnfetOptions o;
    o.metallic_fraction = f;
    const dv::VirtualSourceFet fet{dv::cnfet(dv::Polarity::kNmos, o), 1.0};
    std::printf("  %-14.1e %14.3e %12.2e\n", f, in_amperes(fet.off_current(vdd)),
                in_amperes(fet.on_current(vdd)) / in_amperes(fet.off_current(vdd)));
    bench::record("I_OFF @ metallic fraction " + std::to_string(f),
                  in_amperes(fet.off_current(vdd)), "A/um");
  }
  return bench::finish_manifest();
}
