// Reproduces Fig. 6a: the tCDP-ratio colormap over (C_embodied scale x
// E_operational scale) of the M3D design vs the all-Si baseline, with the
// ratio=1 isoline. Rendered as a numeric grid with the isoline marked.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/carbon/isoline.hpp"
#include "ppatc/core/system.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace cb = ppatc::carbon;

  bench::begin_manifest("fig6a");
  bench::title("Figure 6a — tCDP(M3D, scaled) / tCDP(all-Si) map and isoline (24 months)");

  const auto t2 = core::table2(workloads::matmult_int());
  cb::OperationalScenario scen;
  scen.use_intensity = cb::DiurnalIntensity::flat(cb::grids::us().intensity);
  const Duration life = months(24.0);
  bench::config("grid", "us");
  bench::config("lifetime", life);
  bench::config("scale axes", "embodied x energy, 0.25..4.0");

  cb::AxisSpec x_axis;  // embodied scale 0.25..4.0
  cb::AxisSpec y_axis;  // energy scale 0.25..4.0
  const auto map =
      cb::tcdp_map(t2.m3d.carbon_profile(), t2.all_si.carbon_profile(), scen, life, x_axis, y_axis);

  std::printf("  energy\\embodied scale of the M3D design ('<' = M3D wins, ratio < 1)\n");
  std::printf("  %6s", "y\\x");
  for (int xi = 0; xi < x_axis.samples; xi += 2) std::printf(" %6.2f", x_axis.at(xi));
  std::printf("\n");
  for (int yi = y_axis.samples - 1; yi >= 0; --yi) {
    std::printf("  %6.2f", y_axis.at(yi));
    for (int xi = 0; xi < x_axis.samples; xi += 2) {
      const double r = map.ratio[yi][xi];
      std::printf(" %5.2f%c", r, r < 1.0 ? '<' : ' ');
    }
    std::printf("\n");
  }
  // Pin the map at its corners and center: enough to catch any shift of the
  // whole surface without recording all samples^2 cells.
  for (const int yi : {0, y_axis.samples / 2, y_axis.samples - 1}) {
    for (const int xi : {0, x_axis.samples / 2, x_axis.samples - 1}) {
      char key[64];
      std::snprintf(key, sizeof key, "map ratio @ x=%.3f y=%.3f", x_axis.at(xi), y_axis.at(yi));
      bench::record(key, map.ratio[yi][xi], "x");
    }
  }

  bench::section("tCDP isoline (ratio = 1 boundary)");
  const auto line =
      cb::tcdp_isoline(t2.m3d.carbon_profile(), t2.all_si.carbon_profile(), scen, life, x_axis);
  std::printf("  %-18s %-18s\n", "embodied scale x", "energy scale y(x)");
  for (const auto& pt : line) {
    char key[48];
    std::snprintf(key, sizeof key, "isoline y @ x=%.3f", pt.embodied_scale);
    if (pt.energy_scale) {
      std::printf("  %-18.3f %-18.4f\n", pt.embodied_scale, *pt.energy_scale);
      bench::record(key, *pt.energy_scale, "x", {.rel_tol = 1e-4});
    } else {
      std::printf("  %-18.3f %-18s\n", pt.embodied_scale, "(outside box)");
      bench::record_text(key, "outside box");
    }
  }

  bench::section("sanity anchors");
  const double r11 = cb::tcdp_ratio(t2.m3d.carbon_profile(), t2.all_si.carbon_profile(), scen, life);
  bench::value_row("ratio at (1,1) — the actual M3D design", r11, "x");
  bench::text_row("M3D wins at (1,1)?", r11 < 1.0 ? "yes (matches the paper's 1.02x)" : "no");
  return bench::finish_manifest();
}
