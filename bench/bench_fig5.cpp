// Reproduces Fig. 5: tC and tCDP vs system lifetime for both designs
// (U.S. grid, 2 h/day), with the embodied/operational contributions, the
// dominance and crossover points, and the tCDP ratios at 1/18/24 months.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/carbon/tcdp.hpp"
#include "ppatc/core/system.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace cb = ppatc::carbon;

  bench::begin_manifest("fig5");
  bench::title("Figure 5 — tC and tCDP vs lifetime (U.S. grid, 2 h/day)");

  const auto t2 = core::table2(workloads::matmult_int());
  const auto si = t2.all_si.carbon_profile();
  const auto m3d = t2.m3d.carbon_profile();
  cb::OperationalScenario scen;
  scen.use_intensity = cb::DiurnalIntensity::flat(cb::grids::us().intensity);
  bench::config("grid", "us");
  bench::config("workload", "matmult-int");
  bench::config("all-Si embodied per good die", si.embodied_per_good_die);
  bench::config("M3D embodied per good die", m3d.embodied_per_good_die);
  bench::config("all-Si operational power", si.operational_power);
  bench::config("M3D operational power", m3d.operational_power);

  const auto si_series = cb::lifetime_series(si, scen, 24);
  const auto m3d_series = cb::lifetime_series(m3d, scen, 24);

  std::printf("  %-6s | %9s %9s %9s | %9s %9s %9s | %9s\n", "month", "Si emb", "Si op", "Si tC",
              "M3D emb", "M3D op", "M3D tC", "tCDP M/S");
  for (std::size_t i = 0; i < si_series.size(); ++i) {
    const auto& a = si_series[i];
    const auto& b = m3d_series[i];
    std::printf("  %-6d | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f | %9.3f\n",
                static_cast<int>(i + 1), in_grams_co2e(a.embodied), in_grams_co2e(a.operational),
                in_grams_co2e(a.total), in_grams_co2e(b.embodied), in_grams_co2e(b.operational),
                in_grams_co2e(b.total), b.tcdp / a.tcdp);
    const std::string month = "month " + std::to_string(i + 1);
    bench::record(month + " all-Si tC", in_grams_co2e(a.total), "gCO2e");
    bench::record(month + " M3D tC", in_grams_co2e(b.total), "gCO2e");
    bench::record(month + " tCDP ratio M3D/all-Si", b.tcdp / a.tcdp, "x");
  }
  std::printf("  (columns in gCO2e)\n");

  bench::section("dominance and crossover points");
  const auto si_dom = cb::embodied_dominance_end(si, scen, months(48.0));
  const auto m3d_dom = cb::embodied_dominance_end(m3d, scen, months(48.0));
  if (si_dom) {
    bench::compare_row("C_embodied dominates until (all-Si)", in_months(*si_dom), 14.0, "months",
                       {.rel_tol = 1e-4});
  }
  if (m3d_dom) {
    bench::compare_row("C_embodied dominates until (M3D)", in_months(*m3d_dom), 19.0, "months",
                       {.rel_tol = 1e-4});
  }
  const auto cross = cb::total_carbon_crossover(m3d, si, scen, months(48.0));
  if (cross) {
    bench::record("tC crossover", in_months(*cross), "months", {.rel_tol = 1e-4});
    std::printf(
        "  tC crossover (M3D becomes lower-carbon): %.1f months\n"
        "    (the paper's prose reports 11 months, which is inconsistent with its\n"
        "     own Table II rows — from 3.63 g vs 3.11 g embodied and the 1.25 mW\n"
        "     power delta the crossover falls at ~18 months; see EXPERIMENTS.md)\n",
        in_months(*cross));
  }

  bench::section("tCDP ratios (all-Si tCDP / M3D tCDP; >1 means M3D is more carbon-efficient)");
  for (const double m : {1.0, 18.0, 24.0}) {
    const double r = cb::tcdp_ratio(si, m3d, scen, months(m));
    if (m == 24.0) {
      bench::compare_row("at 24 months (headline)", r, 1.02, "x");
    } else {
      bench::value_row("at " + std::to_string(static_cast<int>(m)) + " months", r, "x");
    }
  }
  bench::value_row("EDP-ratio limit (lifetime -> infinity)",
                   cb::asymptotic_edp_ratio(si, m3d, scen), "x");
  return bench::finish_manifest();
}
