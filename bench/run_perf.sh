#!/usr/bin/env bash
# Runs the perf micro-benchmarks and records a timestamped JSON snapshot
# (BENCH_<date>.json, gitignored) for before/after comparisons.
#
# Usage:
#   bench/run_perf.sh [extra google-benchmark args...]
# or via CMake:
#   cmake --build build --target run_perf
#
# Environment:
#   BENCH_BIN          path to the bench_perf binary (default: build/bench/bench_perf)
#   BENCH_OUT          output file (default: BENCH_<UTC date>.json in the CWD)
#   BENCH_METRICS_OUT  ppatc::obs metrics sidecar (default: <BENCH_OUT
#                      stem>.metrics.json; set to empty to disable)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bin="${BENCH_BIN:-${repo_root}/build/bench/bench_perf}"
out="${BENCH_OUT:-BENCH_$(date -u +%Y%m%dT%H%M%SZ).json}"
metrics_out="${BENCH_METRICS_OUT-${out%.json}.metrics.json}"

if [[ ! -x "${bin}" ]]; then
  echo "error: bench_perf not found at ${bin} — build it first:" >&2
  echo "  cmake -B build -S ${repo_root} && cmake --build build -j --target bench_perf" >&2
  exit 1
fi

# Provenance: embed the commit and run time into the emitted JSON so a
# snapshot can always be traced back to the tree that produced it.
sha="$(git -C "${repo_root}" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
dirty=""
if [[ "${sha}" != unknown ]] && ! git -C "${repo_root}" diff --quiet HEAD 2>/dev/null; then
  dirty="-dirty"
fi
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

echo "writing ${out} (git ${sha}${dirty}, ${stamp})"
BENCH_METRICS_OUT="${metrics_out}" \
  "${bin}" --benchmark_format=json --benchmark_out="${out}" \
           --benchmark_out_format=json \
           --benchmark_context=git_sha="${sha}${dirty}" \
           --benchmark_context=timestamp_utc="${stamp}" "$@"
