#!/usr/bin/env bash
# Runs the perf micro-benchmarks and records a timestamped JSON snapshot
# (BENCH_<date>.json, gitignored) for before/after comparisons.
#
# Usage:
#   bench/run_perf.sh [extra google-benchmark args...]
# or via CMake:
#   cmake --build build --target run_perf
#
# Environment:
#   BENCH_BIN  path to the bench_perf binary (default: build/bench/bench_perf)
#   BENCH_OUT  output file (default: BENCH_<UTC date>.json in the CWD)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bin="${BENCH_BIN:-${repo_root}/build/bench/bench_perf}"
out="${BENCH_OUT:-BENCH_$(date -u +%Y%m%dT%H%M%SZ).json}"

if [[ ! -x "${bin}" ]]; then
  echo "error: bench_perf not found at ${bin} — build it first:" >&2
  echo "  cmake -B build -S ${repo_root} && cmake --build build -j --target bench_perf" >&2
  exit 1
fi

echo "writing ${out}"
"${bin}" --benchmark_format=json --benchmark_out="${out}" \
         --benchmark_out_format=json "$@"
