#!/usr/bin/env bash
# Runs the perf micro-benchmarks and records a timestamped snapshot directory
# (bench/perf_<UTC stamp>/, gitignored) for before/after comparisons:
#   perf.json            google-benchmark timings
#   perf.metrics.json    ppatc::obs metrics sidecar
#   perf.folded          sampling-profiler folded stacks (PPATC_PROFILE;
#                        render with `ppatc-report flamegraph`), stamped with
#                        the same git SHA / timestamp provenance as the
#                        manifests via BENCH_GIT_SHA / BENCH_TIMESTAMP_UTC
#   bench_<name>.json    one run manifest per figure/table bench (compare
#                        against bench/golden/ with ppatc-report)
#
# Usage:
#   bench/run_perf.sh [--compare <baseline.json>] [extra google-benchmark args...]
# or via CMake:
#   cmake --build build --target run_perf
#
# --compare <baseline.json> gates the fresh bench_perf manifest against the
# given baseline (normally bench/golden/perf_baseline.json) with
# `ppatc-report perf-compare`: any latency p50/p95 or throughput gauge that
# moved >15% in the bad direction fails the run (exit 1). Improvements pass.
#
# Environment:
#   BENCH_BIN          path to the bench_perf binary (default: build/bench/bench_perf)
#   REPORT_BIN         path to ppatc-report (default: next to BENCH_BIN at
#                      ../tools/report/ppatc-report; only needed by --compare)
#   BENCH_OUT_DIR      output directory (default: bench/perf_<UTC stamp>)
#   BENCH_METRICS_OUT  ppatc::obs metrics sidecar (default: perf.metrics.json
#                      in BENCH_OUT_DIR; set to empty to disable)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bin="${BENCH_BIN:-${repo_root}/build/bench/bench_perf}"

compare_baseline=""
if [[ "${1-}" == "--compare" ]]; then
  if [[ $# -lt 2 ]]; then
    echo "error: --compare needs a baseline manifest path" >&2
    exit 2
  fi
  compare_baseline="$2"
  shift 2
  if [[ ! -r "${compare_baseline}" ]]; then
    echo "error: baseline manifest not readable: ${compare_baseline}" >&2
    exit 2
  fi
fi

if [[ ! -x "${bin}" ]]; then
  echo "error: bench_perf not found at ${bin} — build it first:" >&2
  echo "  cmake -B build -S ${repo_root} && cmake --build build -j --target bench_perf" >&2
  exit 1
fi

# Provenance: embed the commit and run time into every emitted file so a
# snapshot can always be traced back to the tree that produced it. A snapshot
# without a SHA is untraceable, so a failing rev-parse (not a git checkout,
# corrupted .git, ...) aborts the run instead of stamping an empty string.
if ! sha="$(git -C "${repo_root}" rev-parse --short=12 HEAD 2>/dev/null)"; then
  echo "error: git rev-parse failed in ${repo_root} — perf snapshots must be" >&2
  echo "traceable to a commit; run from a git checkout (or fix the repo)." >&2
  exit 1
fi
dirty=""
if ! git -C "${repo_root}" diff --quiet HEAD 2>/dev/null; then
  dirty="-dirty"
fi
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

out_dir="${BENCH_OUT_DIR:-${repo_root}/bench/perf_$(date -u +%Y%m%dT%H%M%SZ)}"
mkdir -p "${out_dir}"
out="${out_dir}/perf.json"
metrics_out="${BENCH_METRICS_OUT-${out_dir}/perf.metrics.json}"

echo "writing ${out_dir}/ (git ${sha}${dirty}, ${stamp})"
# PPATC_PROFILE snapshots a folded CPU profile alongside the perf numbers;
# the BENCH_* stamps below also land in its header, so the profile carries
# the same provenance as the manifests.
PPATC_PROFILE="${PPATC_PROFILE-${out_dir}/perf.folded}" \
BENCH_METRICS_OUT="${metrics_out}" \
BENCH_MANIFEST_OUT="${out_dir}/bench_perf.json" \
BENCH_GIT_SHA="${sha}${dirty}" \
BENCH_TIMESTAMP_UTC="${stamp}" \
  "${bin}" --benchmark_format=json --benchmark_out="${out}" \
           --benchmark_out_format=json \
           --benchmark_context=git_sha="${sha}${dirty}" \
           --benchmark_context=timestamp_utc="${stamp}" "$@"

# Run manifests for the figure/table benches, one file per bench, so the
# snapshot also pins the model numbers (drift-check them with
#   ppatc-report check <out_dir>/bench_<name>.json bench/golden/bench_<name>.json).
bench_dir="$(dirname "${bin}")"
for b in fig2c fig2d table1 fig4 table2 fig5 fig6a fig6b ablation extensions; do
  if [[ -x "${bench_dir}/bench_${b}" ]]; then
    BENCH_MANIFEST_OUT="${out_dir}/bench_${b}.json" \
    BENCH_GIT_SHA="${sha}${dirty}" \
    BENCH_TIMESTAMP_UTC="${stamp}" \
      "${bench_dir}/bench_${b}" > /dev/null
  else
    echo "note: skipping bench_${b} (not built)" >&2
  fi
done
echo "wrote $(ls "${out_dir}" | wc -l) files to ${out_dir}/"

# Perf gate: direction-aware comparison of the fresh manifest against the
# requested baseline. Runs last so the snapshot is complete either way.
if [[ -n "${compare_baseline}" ]]; then
  report_bin="${REPORT_BIN:-$(dirname "$(dirname "${bin}")")/tools/report/ppatc-report}"
  if [[ ! -x "${report_bin}" ]]; then
    echo "error: ppatc-report not found at ${report_bin} — build it first:" >&2
    echo "  cmake --build build -j --target ppatc_report" >&2
    exit 1
  fi
  echo "perf gate: ${out_dir}/bench_perf.json vs ${compare_baseline}"
  "${report_bin}" perf-compare "${out_dir}/bench_perf.json" "${compare_baseline}"
fi
