// Ablation studies on the design choices DESIGN.md calls out: M3D tier
// count, metallic-CNT removal quality, sub-array geometry, yield model,
// refresh/retention sensitivity, and per-workload Table II rows.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/carbon/embodied.hpp"
#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/wafer.hpp"
#include "ppatc/carbon/yield.hpp"
#include "ppatc/core/system.hpp"
#include "ppatc/memsys/edram.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace cb = ppatc::carbon;

  bench::begin_manifest("ablation");
  bench::title("Ablations");
  bench::config("grid", "us");

  bench::section("A1: M3D tier count vs per-wafer embodied carbon (U.S. grid)");
  std::printf("  %-28s %12s %12s\n", "stack", "EPA kWh", "kgCO2e/wafer");
  for (int cnt_tiers = 0; cnt_tiers <= 4; ++cnt_tiers) {
    cb::M3dFlowOptions opt;
    opt.cnfet_tiers = cnt_tiers;
    const cb::EmbodiedModel m{cb::m3d_igzo_cnfet_flow(opt)};
    std::printf("  %d CNFET + 1 IGZO tiers        %12.1f %12.1f\n", cnt_tiers,
                in_kilowatt_hours(m.energy_per_wafer()),
                in_kilograms_co2e(m.carbon_per_wafer(cb::grids::us())));
    const std::string stack = std::to_string(cnt_tiers) + " CNFET + 1 IGZO tiers";
    bench::record(stack + " EPA", in_kilowatt_hours(m.energy_per_wafer()), "kWh/wafer");
    bench::record(stack + " embodied", in_kilograms_co2e(m.carbon_per_wafer(cb::grids::us())),
                  "kgCO2e/wafer");
  }

  bench::section("A2: metallic-CNT removal quality vs read-stack leakage");
  std::printf("  %-14s %14s %12s\n", "fraction left", "I_OFF A/um", "Ion/Ioff");
  for (const double f : {0.0, 1e-6, 1e-4, 1e-2, 1.0 / 3.0}) {
    device::CnfetOptions o;
    o.metallic_fraction = f;
    const device::VirtualSourceFet fet{device::cnfet(device::Polarity::kNmos, o), 1.0};
    const double ioff = in_amperes(fet.off_current(volts(0.7)));
    std::printf("  %-14.2e %14.3e %12.2e\n", f, ioff,
                in_amperes(fet.on_current(volts(0.7))) / ioff);
    bench::record("I_OFF @ fraction " + std::to_string(f), ioff, "A/um");
  }

  bench::section("A3: sub-array geometry (all-Si bank, energy and timing)");
  std::printf("  %-12s %12s %12s %14s\n", "rows x cols", "read pJ", "delay ps", "500 MHz ok?");
  for (const int dim : {64, 128, 256}) {
    memsys::BankConfig cfg = memsys::si_bank_config();
    cfg.subarray.rows = dim;
    cfg.subarray.cols = dim;
    const memsys::EdramBank bank{cfg};
    std::printf("  %4dx%-7d %12.3f %12.1f %14s\n", dim, dim,
                in_picojoules(bank.subarray().read_energy),
                in_picoseconds(bank.access_delay()),
                bank.meets_timing(megahertz(500)) ? "yes" : "NO");
    const std::string geom = std::to_string(dim) + "x" + std::to_string(dim);
    bench::record(geom + " read energy", in_picojoules(bank.subarray().read_energy), "pJ");
    bench::record(geom + " access delay", in_picoseconds(bank.access_delay()), "ps");
    bench::record_text(geom + " meets 500 MHz", bank.meets_timing(megahertz(500)) ? "yes" : "no");
  }

  bench::section("A4: yield model vs embodied carbon per good die (M3D die, U.S. grid)");
  const auto m3d_model = cb::m3d_embodied_model();
  const Carbon per_wafer = m3d_model.carbon_per_wafer(cb::grids::us());
  const cb::DieSpec die{micrometres(334.0), micrometres(159.0)};
  const double dpw = static_cast<double>(cb::dies_per_wafer_formula(die));
  const Area die_area = micrometres(334.0) * micrometres(159.0);
  struct {
    const char* name;
    cb::YieldModel model;
  } models[] = {
      {"fixed 50% (paper)", cb::fixed_yield(0.50)},
      {"Poisson D0=0.1/cm2", cb::poisson_yield(0.1)},
      {"Murphy D0=0.1/cm2", cb::murphy_yield(0.1)},
      {"stacked 3 tiers, each Poisson D0=0.3", cb::stacked_yield({cb::poisson_yield(0.3),
                                                                  cb::poisson_yield(0.3),
                                                                  cb::poisson_yield(0.3)})},
  };
  std::printf("  %-40s %10s %14s\n", "yield model", "yield", "gCO2e/good die");
  for (const auto& m : models) {
    const double y = m.model(die_area);
    std::printf("  %-40s %9.1f%% %14.3f\n", m.name, 100.0 * y,
                in_grams_co2e(per_wafer) / (dpw * y));
    bench::record(std::string{m.name} + " yield", 100.0 * y, "%");
    bench::record(std::string{m.name} + " embodied per good die",
                  in_grams_co2e(per_wafer) / (dpw * y), "gCO2e");
  }

  bench::section("A5: Si cell retention vs refresh share of memory energy");
  std::printf("  %-16s %14s %16s\n", "retention", "refresh mW", "share of 18 pJ/c");
  {
    const memsys::EdramBank bank{memsys::si_bank_config()};
    const double nominal_ret = in_seconds(bank.cell().retention);
    for (const double scale : {0.1, 1.0, 10.0}) {
      // Refresh power scales as 1/retention.
      const double p_mw = in_milliwatts(bank.refresh_power()) / scale;
      std::printf("  %13.1f us %14.4f %15.2f%%\n", nominal_ret * scale * 1e6, p_mw,
                  100.0 * (p_mw * 1e-3 / 500e6) / 18e-12);
      char key[48];
      std::snprintf(key, sizeof key, "refresh power @ %.1f us retention",
                    nominal_ret * scale * 1e6);
      bench::record(key, p_mw, "mW");
    }
  }

  bench::section("A6: Table II memory energies across the Embench-style suite");
  std::printf("  %-14s %12s %12s %14s %14s\n", "workload", "cycles", "acc/cycle", "Si pJ/c",
              "M3D pJ/c");
  const memsys::EdramBank si_bank{memsys::si_bank_config()};
  const memsys::EdramBank m3d_bank{memsys::m3d_bank_config()};
  for (const auto& w : workloads::embench_suite()) {
    const auto run = workloads::run_workload(w);
    const auto e_si = memsys::memory_energy(si_bank, run.stats, run.cycles, megahertz(500));
    const auto e_m3d = memsys::memory_energy(m3d_bank, run.stats, run.cycles, megahertz(500));
    std::printf("  %-14s %12llu %12.3f %14.2f %14.2f\n", w.name.c_str(),
                static_cast<unsigned long long>(run.cycles),
                static_cast<double>(run.stats.total_memory_accesses()) /
                    static_cast<double>(run.cycles),
                in_picojoules(e_si.per_cycle), in_picojoules(e_m3d.per_cycle));
    bench::record(w.name + " cycles", static_cast<double>(run.cycles), "cycles");
    bench::record(w.name + " Si memory energy", in_picojoules(e_si.per_cycle), "pJ/cycle");
    bench::record(w.name + " M3D memory energy", in_picojoules(e_m3d.per_cycle), "pJ/cycle");
  }
  return bench::finish_manifest();
}
