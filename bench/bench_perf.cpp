// Micro-performance benchmarks (google-benchmark) for the heavy kernels:
// ISS dispatch, assembly, MNA transient steps, flow evaluation, die counting,
// isoline extraction, and Monte-Carlo sampling.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "ppatc/carbon/embodied.hpp"
#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/isoline.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/carbon/wafer.hpp"
#include "ppatc/core/optimize.hpp"
#include "ppatc/isa/assembler.hpp"
#include "ppatc/memsys/bitcell.hpp"
#include "ppatc/isa/cpu.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "ppatc/spice/simulator.hpp"
#include "ppatc/workloads/workload.hpp"

namespace {

using namespace ppatc;
using namespace ppatc::units;

void BM_IssDispatch(benchmark::State& state) {
  const auto w = workloads::crc32(1);
  const isa::Program p = isa::assemble(w.assembly);
  for (auto _ : state) {
    isa::Bus bus;
    bus.load_program(0, p.bytes);
    isa::Cpu cpu{bus};
    cpu.reset(p.entry, isa::kDataBase + isa::kDataSize - 16);
    const bool timed = obs::metrics_enabled();
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    const auto r = cpu.run(1'000'000'000);
    if (timed) {
      // Published into the run manifest so `ppatc-report perf-compare` can
      // gate the ISS rate against bench/golden/perf_baseline.json.
      const double secs = static_cast<double>(obs::monotonic_ns() - t0) * 1e-9;
      static obs::Gauge& rate = obs::gauge("isa.insn_per_sec");
      if (secs > 0.0) rate.set(static_cast<double>(r.instructions) / secs);
    }
    benchmark::DoNotOptimize(r.cycles);
    state.counters["insn/s"] = benchmark::Counter(static_cast<double>(r.instructions),
                                                  benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_IssDispatch)->Unit(benchmark::kMillisecond);

// The retired switch interpreter, kept runnable as the before/after baseline
// for the threaded-code engine (and as a sanity check that the speedup is
// attributable to dispatch, not workload drift).
void BM_IssDispatchSwitch(benchmark::State& state) {
  const auto w = workloads::crc32(1);
  const isa::Program p = isa::assemble(w.assembly);
  for (auto _ : state) {
    isa::Bus bus;
    bus.load_program(0, p.bytes);
    isa::Cpu cpu{bus, isa::CycleModel{}, isa::Cpu::Dispatch::kSwitch};
    cpu.reset(p.entry, isa::kDataBase + isa::kDataSize - 16);
    const auto r = cpu.run(1'000'000'000);
    benchmark::DoNotOptimize(r.cycles);
    state.counters["insn/s"] = benchmark::Counter(static_cast<double>(r.instructions),
                                                  benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_IssDispatchSwitch)->Unit(benchmark::kMillisecond);

void BM_Assemble(benchmark::State& state) {
  const auto w = workloads::matmult_int(1);
  for (auto _ : state) {
    const isa::Program p = isa::assemble(w.assembly);
    benchmark::DoNotOptimize(p.bytes.data());
  }
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMicrosecond);

void BM_SpiceTransientRc(benchmark::State& state) {
  spice::Circuit c;
  c.add_vsource("vin", "in", "0",
                spice::Stimulus::pwl({{seconds(0.0), volts(0.0)}, {seconds(1e-9), volts(1.0)}}));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", femtofarads(10.0));
  const spice::Simulator sim{c};
  for (auto _ : state) {
    const auto tr = sim.transient(nanoseconds(100.0), picoseconds(10.0));
    benchmark::DoNotOptimize(tr->sample_count());
  }
}
BENCHMARK(BM_SpiceTransientRc)->Unit(benchmark::kMillisecond);

// Same deck through the dense LU oracle: the before/after baseline for the
// sparse replayed solver.
void BM_SpiceTransientRcDense(benchmark::State& state) {
  spice::Circuit c;
  c.add_vsource("vin", "in", "0",
                spice::Stimulus::pwl({{seconds(0.0), volts(0.0)}, {seconds(1e-9), volts(1.0)}}));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", femtofarads(10.0));
  const spice::Simulator sim{c, {.solver = spice::LinearSolverKind::kDense}};
  for (auto _ : state) {
    const auto tr = sim.transient(nanoseconds(100.0), picoseconds(10.0));
    benchmark::DoNotOptimize(tr->sample_count());
  }
}
BENCHMARK(BM_SpiceTransientRcDense)->Unit(benchmark::kMillisecond);

void BM_CellCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    const auto cc = memsys::characterize(memsys::all_si_cell());
    benchmark::DoNotOptimize(cc.read_delay);
  }
}
BENCHMARK(BM_CellCharacterization)->Unit(benchmark::kMillisecond);

void BM_FlowEpa(benchmark::State& state) {
  const auto table = carbon::StepEnergyTable::calibrated();
  const auto flow = carbon::m3d_igzo_cnfet_flow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.energy_per_wafer(table));
  }
}
BENCHMARK(BM_FlowEpa);

void BM_DiesPerWaferGrid(benchmark::State& state) {
  const carbon::DieSpec die{micrometres(515.0), micrometres(270.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(carbon::dies_per_wafer_grid(die));
  }
}
BENCHMARK(BM_DiesPerWaferGrid)->Unit(benchmark::kMillisecond);

void BM_Isoline(benchmark::State& state) {
  carbon::SystemCarbonProfile m3d{"m3d", grams_co2e(3.63), milliwatts(8.46), watts(0.0),
                                  milliseconds(40.0)};
  carbon::SystemCarbonProfile si{"si", grams_co2e(3.11), milliwatts(9.71), watts(0.0),
                                 milliseconds(40.0)};
  carbon::OperationalScenario scen;
  for (auto _ : state) {
    const auto line = carbon::tcdp_isoline(m3d, si, scen, months(24.0));
    benchmark::DoNotOptimize(line.size());
  }
}
BENCHMARK(BM_Isoline)->Unit(benchmark::kMicrosecond);

void BM_MonteCarlo(benchmark::State& state) {
  carbon::UncertainProfile c;
  c.embodied_per_good_die_g = carbon::Interval::factor(3.63, 1.2);
  c.operational_power_w = carbon::Interval::point(8.46e-3);
  c.execution_time = seconds(0.040);
  carbon::UncertainProfile b;
  b.embodied_per_good_die_g = carbon::Interval::factor(3.11, 1.2);
  b.operational_power_w = carbon::Interval::point(9.71e-3);
  b.execution_time = seconds(0.040);
  carbon::UncertainScenario s;
  s.ci_use_g_per_kwh = carbon::Interval::factor(380.0, 3.0);
  s.lifetime_months = carbon::Interval::plus_minus(24.0, 6.0);
  for (auto _ : state) {
    const auto mc = carbon::monte_carlo_tcdp_ratio(c, b, s, 10000, 42);
    benchmark::DoNotOptimize(mc.mean);
  }
}
BENCHMARK(BM_MonteCarlo)->Unit(benchmark::kMillisecond);

// ---- threaded variants ------------------------------------------------------
// Each benchmark takes the ppatc::runtime pool size as its argument, so one
// run quantifies the speedup curve (results are bit-identical at every
// point — see test_runtime.cpp).

carbon::UncertainProfile mc_profile(double emb_g, double p_w) {
  carbon::UncertainProfile p;
  p.embodied_per_good_die_g = carbon::Interval::factor(emb_g, 1.2);
  p.operational_power_w = carbon::Interval::point(p_w);
  p.execution_time = seconds(0.040);
  return p;
}

void BM_MonteCarloThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  const auto c = mc_profile(3.63, 8.46e-3);
  const auto b = mc_profile(3.11, 9.71e-3);
  carbon::UncertainScenario s;
  s.ci_use_g_per_kwh = carbon::Interval::factor(380.0, 3.0);
  s.lifetime_months = carbon::Interval::plus_minus(24.0, 6.0);
  for (auto _ : state) {
    const auto mc = carbon::monte_carlo_tcdp_ratio(c, b, s, 100000, 42);
    benchmark::DoNotOptimize(mc.mean);
  }
  state.counters["samples/s"] =
      benchmark::Counter(100000.0, benchmark::Counter::kIsIterationInvariantRate);
  runtime::set_thread_count(0);
}
BENCHMARK(BM_MonteCarloThreads)->RangeMultiplier(2)->Range(1, 8)->Unit(benchmark::kMillisecond);

void BM_IsolineThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  carbon::SystemCarbonProfile m3d{"m3d", grams_co2e(3.63), milliwatts(8.46), watts(0.0),
                                  milliseconds(40.0)};
  carbon::SystemCarbonProfile si{"si", grams_co2e(3.11), milliwatts(9.71), watts(0.0),
                                 milliseconds(40.0)};
  carbon::OperationalScenario scen;
  carbon::AxisSpec fine;
  fine.samples = 128;
  for (auto _ : state) {
    const auto line = carbon::tcdp_isoline(m3d, si, scen, months(24.0), fine);
    benchmark::DoNotOptimize(line.size());
  }
  runtime::set_thread_count(0);
}
BENCHMARK(BM_IsolineThreads)->RangeMultiplier(2)->Range(1, 8)->Unit(benchmark::kMillisecond);

void BM_TcdpMapThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  carbon::SystemCarbonProfile m3d{"m3d", grams_co2e(3.63), milliwatts(8.46), watts(0.0),
                                  milliseconds(40.0)};
  carbon::SystemCarbonProfile si{"si", grams_co2e(3.11), milliwatts(9.71), watts(0.0),
                                 milliseconds(40.0)};
  carbon::OperationalScenario scen;
  carbon::AxisSpec fine;
  fine.samples = 64;
  for (auto _ : state) {
    const auto map = carbon::tcdp_map(m3d, si, scen, months(24.0), fine, fine);
    benchmark::DoNotOptimize(map.ratio.size());
  }
  runtime::set_thread_count(0);
}
BENCHMARK(BM_TcdpMapThreads)->RangeMultiplier(2)->Range(1, 8)->Unit(benchmark::kMillisecond);

void BM_CellCharacterizationBatch(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  const std::vector<memsys::CellSpec> cells = {
      memsys::all_si_cell(), memsys::m3d_igzo_cnfet_cell(), memsys::all_si_cell(),
      memsys::m3d_igzo_cnfet_cell()};
  for (auto _ : state) {
    const auto ccs = memsys::characterize_batch(cells);
    benchmark::DoNotOptimize(ccs.size());
  }
  runtime::set_thread_count(0);
}
BENCHMARK(BM_CellCharacterizationBatch)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond);

void BM_OptimizeThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  core::DesignSpace space;  // full 2 x 4 x 7 grid
  core::OptimizationGoal goal;
  const auto workload = workloads::crc32(1);
  for (auto _ : state) {
    const auto result = core::optimize(space, workload, goal);
    benchmark::DoNotOptimize(result.ranked.size());
  }
  runtime::set_thread_count(0);
}
BENCHMARK(BM_OptimizeThreads)->RangeMultiplier(2)->Range(1, 8)->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN so the run can emit a structured metrics sidecar:
// when BENCH_METRICS_OUT names a file, the ppatc::obs counters accumulated
// across all benchmark iterations (Newton iterations, chunks executed, MC
// samples, ...) are dumped there as JSON next to google-benchmark's own
// timing output.
// When BENCH_MANIFEST_OUT is also set, a run manifest with the accumulated
// obs counters and span timings is written there (timings are informational,
// never drift-gated — see DESIGN.md).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ppatc::bench::begin_manifest("perf");
  ppatc::bench::enable_metrics_sidecar();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ppatc::bench::write_metrics_sidecar();
  return ppatc::bench::finish_manifest();
}
