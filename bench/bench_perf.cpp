// Micro-performance benchmarks (google-benchmark) for the heavy kernels:
// ISS dispatch, assembly, MNA transient steps, flow evaluation, die counting,
// isoline extraction, and Monte-Carlo sampling.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "bench_util.hpp"
#include "ppatc/carbon/embodied.hpp"
#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/isoline.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/carbon/wafer.hpp"
#include "ppatc/core/optimize.hpp"
#include "ppatc/isa/assembler.hpp"
#include "ppatc/memsys/bitcell.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/prof.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/isa/cpu.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "ppatc/spice/simulator.hpp"
#include "ppatc/workloads/workload.hpp"

namespace {

using namespace ppatc;
using namespace ppatc::units;

void BM_IssDispatch(benchmark::State& state) {
  const auto w = workloads::crc32(1);
  const isa::Program p = isa::assemble(w.assembly);
  // Aggregated across every timed iteration: a single run is ~0.3 ms, and a
  // last-sample gauge at that window is too noisy for the 15% perf gate.
  std::uint64_t total_ns = 0;
  std::uint64_t total_insn = 0;
  for (auto _ : state) {
    isa::Bus bus;
    bus.load_program(0, p.bytes);
    isa::Cpu cpu{bus};
    cpu.reset(p.entry, isa::kDataBase + isa::kDataSize - 16);
    const bool timed = obs::metrics_enabled();
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    const auto r = cpu.run(1'000'000'000);
    if (timed) {
      // Published into the run manifest so `ppatc-report perf-compare` can
      // gate the ISS rate against bench/golden/perf_baseline.json.
      total_ns += obs::monotonic_ns() - t0;
      total_insn += r.instructions;
      static obs::Gauge& rate = obs::gauge("isa.insn_per_sec");
      if (total_ns > 0) {
        rate.set(static_cast<double>(total_insn) * 1e9 / static_cast<double>(total_ns));
      }
    }
    benchmark::DoNotOptimize(r.cycles);
    state.counters["insn/s"] = benchmark::Counter(static_cast<double>(r.instructions),
                                                  benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_IssDispatch)->Unit(benchmark::kMillisecond);

// The retired switch interpreter, kept runnable as the before/after baseline
// for the threaded-code engine (and as a sanity check that the speedup is
// attributable to dispatch, not workload drift).
void BM_IssDispatchSwitch(benchmark::State& state) {
  const auto w = workloads::crc32(1);
  const isa::Program p = isa::assemble(w.assembly);
  for (auto _ : state) {
    isa::Bus bus;
    bus.load_program(0, p.bytes);
    isa::Cpu cpu{bus, isa::CycleModel{}, isa::Cpu::Dispatch::kSwitch};
    cpu.reset(p.entry, isa::kDataBase + isa::kDataSize - 16);
    const auto r = cpu.run(1'000'000'000);
    benchmark::DoNotOptimize(r.cycles);
    state.counters["insn/s"] = benchmark::Counter(static_cast<double>(r.instructions),
                                                  benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_IssDispatchSwitch)->Unit(benchmark::kMillisecond);

void BM_Assemble(benchmark::State& state) {
  const auto w = workloads::matmult_int(1);
  for (auto _ : state) {
    const isa::Program p = isa::assemble(w.assembly);
    benchmark::DoNotOptimize(p.bytes.data());
  }
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMicrosecond);

void BM_SpiceTransientRc(benchmark::State& state) {
  spice::Circuit c;
  c.add_vsource("vin", "in", "0",
                spice::Stimulus::pwl({{seconds(0.0), volts(0.0)}, {seconds(1e-9), volts(1.0)}}));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", femtofarads(10.0));
  const spice::Simulator sim{c};
  for (auto _ : state) {
    const auto tr = sim.transient(nanoseconds(100.0), picoseconds(10.0));
    benchmark::DoNotOptimize(tr->sample_count());
  }
}
BENCHMARK(BM_SpiceTransientRc)->Unit(benchmark::kMillisecond);

// Same deck through the dense LU oracle: the before/after baseline for the
// sparse replayed solver.
void BM_SpiceTransientRcDense(benchmark::State& state) {
  spice::Circuit c;
  c.add_vsource("vin", "in", "0",
                spice::Stimulus::pwl({{seconds(0.0), volts(0.0)}, {seconds(1e-9), volts(1.0)}}));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", femtofarads(10.0));
  const spice::Simulator sim{c, {.solver = spice::LinearSolverKind::kDense}};
  for (auto _ : state) {
    const auto tr = sim.transient(nanoseconds(100.0), picoseconds(10.0));
    benchmark::DoNotOptimize(tr->sample_count());
  }
}
BENCHMARK(BM_SpiceTransientRcDense)->Unit(benchmark::kMillisecond);

void BM_CellCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    const auto cc = memsys::characterize(memsys::all_si_cell());
    benchmark::DoNotOptimize(cc.read_delay);
  }
}
BENCHMARK(BM_CellCharacterization)->Unit(benchmark::kMillisecond);

void BM_FlowEpa(benchmark::State& state) {
  const auto table = carbon::StepEnergyTable::calibrated();
  const auto flow = carbon::m3d_igzo_cnfet_flow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.energy_per_wafer(table));
  }
}
BENCHMARK(BM_FlowEpa);

void BM_DiesPerWaferGrid(benchmark::State& state) {
  const carbon::DieSpec die{micrometres(515.0), micrometres(270.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(carbon::dies_per_wafer_grid(die));
  }
}
BENCHMARK(BM_DiesPerWaferGrid)->Unit(benchmark::kMillisecond);

void BM_Isoline(benchmark::State& state) {
  carbon::SystemCarbonProfile m3d{"m3d", grams_co2e(3.63), milliwatts(8.46), watts(0.0),
                                  milliseconds(40.0)};
  carbon::SystemCarbonProfile si{"si", grams_co2e(3.11), milliwatts(9.71), watts(0.0),
                                 milliseconds(40.0)};
  carbon::OperationalScenario scen;
  for (auto _ : state) {
    const auto line = carbon::tcdp_isoline(m3d, si, scen, months(24.0));
    benchmark::DoNotOptimize(line.size());
  }
}
BENCHMARK(BM_Isoline)->Unit(benchmark::kMicrosecond);

void BM_MonteCarlo(benchmark::State& state) {
  carbon::UncertainProfile c;
  c.embodied_per_good_die_g = carbon::Interval::factor(3.63, 1.2);
  c.operational_power_w = carbon::Interval::point(8.46e-3);
  c.execution_time = seconds(0.040);
  carbon::UncertainProfile b;
  b.embodied_per_good_die_g = carbon::Interval::factor(3.11, 1.2);
  b.operational_power_w = carbon::Interval::point(9.71e-3);
  b.execution_time = seconds(0.040);
  carbon::UncertainScenario s;
  s.ci_use_g_per_kwh = carbon::Interval::factor(380.0, 3.0);
  s.lifetime_months = carbon::Interval::plus_minus(24.0, 6.0);
  for (auto _ : state) {
    const auto mc = carbon::monte_carlo_tcdp_ratio(c, b, s, 10000, 42);
    benchmark::DoNotOptimize(mc.mean);
  }
}
BENCHMARK(BM_MonteCarlo)->Unit(benchmark::kMillisecond);

// ---- observability overhead -------------------------------------------------
// The flight recorder is on by default, so its per-event cost is itself a
// gated perf surface: the gauges below land in the run manifest and
// bench/golden/perf_baseline.json, and `ppatc-report perf-compare` fails any
// >15% bad-direction move — events/sec falling or per-event ns rising.
//
// Each benchmark pins the obs switches it is measuring (tracing OFF inside
// the hot loops: the tracer buffers every span and a benchmark would grow
// that buffer by millions of entries) and restores the ambient state after,
// so the sidecar/manifest machinery of the surrounding run keeps working.

struct ObsStateGuard {
  bool metrics = obs::metrics_enabled();
  bool tracing = obs::tracing_enabled();
  bool flight = obs::flight_enabled();
  ~ObsStateGuard() {
    obs::set_metrics_enabled(metrics);
    obs::set_tracing_enabled(tracing);
    obs::set_flight_enabled(flight);
  }
};

// Publishes one loop's per-event cost as gauges (skipped when the ambient
// run has metrics off — nothing would reach the manifest anyway).
void publish_obs_cost(const ObsStateGuard& ambient, const char* ns_gauge,
                      const char* rate_gauge, std::uint64_t elapsed_ns,
                      std::int64_t events) {
  if (!ambient.metrics || elapsed_ns == 0 || events <= 0) return;
  obs::gauge(ns_gauge).set(static_cast<double>(elapsed_ns) / static_cast<double>(events));
  if (rate_gauge != nullptr) {
    obs::gauge(rate_gauge).set(static_cast<double>(events) /
                               (static_cast<double>(elapsed_ns) * 1e-9));
  }
}

void BM_ObsFlightMark(benchmark::State& state) {
  const ObsStateGuard ambient;
  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);
  obs::set_flight_enabled(true);
  std::uint64_t v = 0;
  const std::uint64_t t0 = obs::monotonic_ns();
  for (auto _ : state) {
    obs::flight_mark("bench.flight_mark", v++);
  }
  const std::uint64_t t1 = obs::monotonic_ns();
  obs::reset_flight();
  obs::set_metrics_enabled(ambient.metrics);
  publish_obs_cost(ambient, "obs.flight_event_ns", "obs.flight_events_per_sec", t1 - t0,
                   state.iterations());
  state.counters["events/s"] =
      benchmark::Counter(1.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ObsFlightMark)->Unit(benchmark::kNanosecond);

void BM_ObsFlightMarkDisabled(benchmark::State& state) {
  const ObsStateGuard ambient;
  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);
  obs::set_flight_enabled(false);
  std::uint64_t v = 0;
  const std::uint64_t t0 = obs::monotonic_ns();
  for (auto _ : state) {
    obs::flight_mark("bench.flight_mark_off", v++);
  }
  const std::uint64_t t1 = obs::monotonic_ns();
  obs::set_metrics_enabled(ambient.metrics);
  publish_obs_cost(ambient, "obs.flight_disabled_ns", nullptr, t1 - t0, state.iterations());
  state.counters["events/s"] =
      benchmark::Counter(1.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ObsFlightMarkDisabled)->Unit(benchmark::kNanosecond);

void BM_ObsSpan(benchmark::State& state) {
  const ObsStateGuard ambient;
  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);  // flight-only span: the on-by-default config
  obs::set_flight_enabled(true);
  const std::uint64_t t0 = obs::monotonic_ns();
  for (auto _ : state) {
    const obs::Span span{"bench.obs_span"};
    benchmark::DoNotOptimize(&span);
  }
  const std::uint64_t t1 = obs::monotonic_ns();
  obs::reset_flight();
  obs::set_metrics_enabled(ambient.metrics);
  publish_obs_cost(ambient, "obs.span_ns", nullptr, t1 - t0, state.iterations());
}
BENCHMARK(BM_ObsSpan)->Unit(benchmark::kNanosecond);

void BM_ObsCounterAdd(benchmark::State& state) {
  const ObsStateGuard ambient;
  // The full default hot path: sharded aggregate + flight ring event.
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(false);
  obs::set_flight_enabled(true);
  static obs::Counter& c = obs::counter("bench.obs_counter");
  const std::uint64_t t0 = obs::monotonic_ns();
  for (auto _ : state) {
    c.add(1);
  }
  const std::uint64_t t1 = obs::monotonic_ns();
  obs::reset_flight();
  obs::set_metrics_enabled(ambient.metrics);
  publish_obs_cost(ambient, "obs.counter_add_ns", nullptr, t1 - t0, state.iterations());
}
BENCHMARK(BM_ObsCounterAdd)->Unit(benchmark::kNanosecond);

// ---- sampling profiler cost -------------------------------------------------
// The overhead gate for obs::prof: the same fixed CPU-bound workload is timed
// with sampling off and on (997 Hz), and the on/off delta plus the handler's
// self-measured per-sample cost are published as obs.prof_* gauges for the
// perf-compare baseline (budget: <=2% whole-program overhead).

double prof_workload(std::size_t iters) {
  double acc = 1.0;
  for (std::size_t i = 0; i < iters; ++i) {
    acc += static_cast<double>((i * 2654435761U) & 0xffff) * 1e-9;
    acc *= 1.0 + 1e-12 * static_cast<double>(i & 0xff);
  }
  return acc;
}

void BM_ProfOverhead(benchmark::State& state) {
  const ObsStateGuard ambient;
  // Ambient profiling (PPATC_PROFILE) keeps whatever it sampled so far; the
  // benchmark's own A/B samples are cleared back out before it resumes.
  const bool prof_ambient = obs::prof_enabled();
  obs::stop_profiler();
  constexpr std::size_t kWork = 1'000'000;
  std::uint64_t off_ns = 0;
  std::uint64_t on_ns = 0;
  for (auto _ : state) {
    const std::uint64_t t0 = obs::monotonic_ns();
    benchmark::DoNotOptimize(prof_workload(kWork));
    const std::uint64_t t1 = obs::monotonic_ns();
    obs::start_profiler(obs::kProfDefaultHz);
    const std::uint64_t t2 = obs::monotonic_ns();
    benchmark::DoNotOptimize(prof_workload(kWork));
    const std::uint64_t t3 = obs::monotonic_ns();
    obs::stop_profiler();
    off_ns += t1 - t0;
    on_ns += t3 - t2;
  }
  const obs::ProfSnapshot snap = obs::prof_snapshot();
  obs::reset_prof();
  if (prof_ambient) obs::start_profiler();
  if (ambient.metrics && off_ns > 0) {
    obs::gauge("obs.prof_sample_ns").set(snap.sample_ns_avg());
    const double overhead_pct = 100.0 *
                                (static_cast<double>(on_ns) - static_cast<double>(off_ns)) /
                                static_cast<double>(off_ns);
    // Floored at a noise level: shared-runner jitter makes tiny negative
    // deltas common, and the perf gate needs a stable positive latency
    // metric to trend (baseline 2.0 = the overhead budget).
    obs::gauge("obs.prof_overhead_pct").set(std::max(overhead_pct, 0.25));
  }
  state.counters["samples"] =
      benchmark::Counter(static_cast<double>(snap.samples), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ProfOverhead)->Unit(benchmark::kMillisecond);

void BM_ProfPollDisabled(benchmark::State& state) {
  const ObsStateGuard ambient;
  const bool prof_ambient = obs::prof_enabled();
  obs::stop_profiler();
  const std::uint64_t t0 = obs::monotonic_ns();
  for (auto _ : state) {
    obs::detail::prof_poll_thread();  // disabled-mode cost: one relaxed load
  }
  const std::uint64_t t1 = obs::monotonic_ns();
  if (prof_ambient) obs::start_profiler();
  publish_obs_cost(ambient, "obs.prof_poll_disabled_ns", nullptr, t1 - t0, state.iterations());
}
BENCHMARK(BM_ProfPollDisabled)->Unit(benchmark::kNanosecond);

// ---- threaded variants ------------------------------------------------------
// Each benchmark takes the ppatc::runtime pool size as its argument, so one
// run quantifies the speedup curve (results are bit-identical at every
// point — see test_runtime.cpp).

carbon::UncertainProfile mc_profile(double emb_g, double p_w) {
  carbon::UncertainProfile p;
  p.embodied_per_good_die_g = carbon::Interval::factor(emb_g, 1.2);
  p.operational_power_w = carbon::Interval::point(p_w);
  p.execution_time = seconds(0.040);
  return p;
}

void BM_MonteCarloThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  const auto c = mc_profile(3.63, 8.46e-3);
  const auto b = mc_profile(3.11, 9.71e-3);
  carbon::UncertainScenario s;
  s.ci_use_g_per_kwh = carbon::Interval::factor(380.0, 3.0);
  s.lifetime_months = carbon::Interval::plus_minus(24.0, 6.0);
  for (auto _ : state) {
    const auto mc = carbon::monte_carlo_tcdp_ratio(c, b, s, 100000, 42);
    benchmark::DoNotOptimize(mc.mean);
  }
  state.counters["samples/s"] =
      benchmark::Counter(100000.0, benchmark::Counter::kIsIterationInvariantRate);
  runtime::set_thread_count(0);
}
BENCHMARK(BM_MonteCarloThreads)->RangeMultiplier(2)->Range(1, 8)->Unit(benchmark::kMillisecond);

void BM_IsolineThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  carbon::SystemCarbonProfile m3d{"m3d", grams_co2e(3.63), milliwatts(8.46), watts(0.0),
                                  milliseconds(40.0)};
  carbon::SystemCarbonProfile si{"si", grams_co2e(3.11), milliwatts(9.71), watts(0.0),
                                 milliseconds(40.0)};
  carbon::OperationalScenario scen;
  carbon::AxisSpec fine;
  fine.samples = 128;
  for (auto _ : state) {
    const auto line = carbon::tcdp_isoline(m3d, si, scen, months(24.0), fine);
    benchmark::DoNotOptimize(line.size());
  }
  runtime::set_thread_count(0);
}
BENCHMARK(BM_IsolineThreads)->RangeMultiplier(2)->Range(1, 8)->Unit(benchmark::kMillisecond);

void BM_TcdpMapThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  carbon::SystemCarbonProfile m3d{"m3d", grams_co2e(3.63), milliwatts(8.46), watts(0.0),
                                  milliseconds(40.0)};
  carbon::SystemCarbonProfile si{"si", grams_co2e(3.11), milliwatts(9.71), watts(0.0),
                                 milliseconds(40.0)};
  carbon::OperationalScenario scen;
  carbon::AxisSpec fine;
  fine.samples = 64;
  for (auto _ : state) {
    const auto map = carbon::tcdp_map(m3d, si, scen, months(24.0), fine, fine);
    benchmark::DoNotOptimize(map.ratio.size());
  }
  runtime::set_thread_count(0);
}
BENCHMARK(BM_TcdpMapThreads)->RangeMultiplier(2)->Range(1, 8)->Unit(benchmark::kMillisecond);

void BM_CellCharacterizationBatch(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  const std::vector<memsys::CellSpec> cells = {
      memsys::all_si_cell(), memsys::m3d_igzo_cnfet_cell(), memsys::all_si_cell(),
      memsys::m3d_igzo_cnfet_cell()};
  for (auto _ : state) {
    const auto ccs = memsys::characterize_batch(cells);
    benchmark::DoNotOptimize(ccs.size());
  }
  runtime::set_thread_count(0);
}
BENCHMARK(BM_CellCharacterizationBatch)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond);

void BM_OptimizeThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<std::size_t>(state.range(0)));
  core::DesignSpace space;  // full 2 x 4 x 7 grid
  core::OptimizationGoal goal;
  const auto workload = workloads::crc32(1);
  for (auto _ : state) {
    const auto result = core::optimize(space, workload, goal);
    benchmark::DoNotOptimize(result.ranked.size());
  }
  runtime::set_thread_count(0);
}
BENCHMARK(BM_OptimizeThreads)->RangeMultiplier(2)->Range(1, 8)->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN so the run can emit a structured metrics sidecar:
// when BENCH_METRICS_OUT names a file, the ppatc::obs counters accumulated
// across all benchmark iterations (Newton iterations, chunks executed, MC
// samples, ...) are dumped there as JSON next to google-benchmark's own
// timing output.
// When BENCH_MANIFEST_OUT is also set, a run manifest with the accumulated
// obs counters and span timings is written there (timings are informational,
// never drift-gated — see DESIGN.md).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ppatc::bench::begin_manifest("perf");
  ppatc::bench::enable_metrics_sidecar();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ppatc::bench::write_metrics_sidecar();
  return ppatc::bench::finish_manifest();
}
