// Micro-performance benchmarks (google-benchmark) for the heavy kernels:
// ISS dispatch, assembly, MNA transient steps, flow evaluation, die counting,
// isoline extraction, and Monte-Carlo sampling.
#include <benchmark/benchmark.h>

#include "ppatc/carbon/embodied.hpp"
#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/isoline.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/carbon/wafer.hpp"
#include "ppatc/isa/assembler.hpp"
#include "ppatc/memsys/bitcell.hpp"
#include "ppatc/isa/cpu.hpp"
#include "ppatc/spice/simulator.hpp"
#include "ppatc/workloads/workload.hpp"

namespace {

using namespace ppatc;
using namespace ppatc::units;

void BM_IssDispatch(benchmark::State& state) {
  const auto w = workloads::crc32(1);
  const isa::Program p = isa::assemble(w.assembly);
  for (auto _ : state) {
    isa::Bus bus;
    bus.load_program(0, p.bytes);
    isa::Cpu cpu{bus};
    cpu.reset(p.entry, isa::kDataBase + isa::kDataSize - 16);
    const auto r = cpu.run(1'000'000'000);
    benchmark::DoNotOptimize(r.cycles);
    state.counters["insn/s"] = benchmark::Counter(static_cast<double>(r.instructions),
                                                  benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_IssDispatch)->Unit(benchmark::kMillisecond);

void BM_Assemble(benchmark::State& state) {
  const auto w = workloads::matmult_int(1);
  for (auto _ : state) {
    const isa::Program p = isa::assemble(w.assembly);
    benchmark::DoNotOptimize(p.bytes.data());
  }
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMicrosecond);

void BM_SpiceTransientRc(benchmark::State& state) {
  spice::Circuit c;
  c.add_vsource("vin", "in", "0",
                spice::Stimulus::pwl({{seconds(0.0), volts(0.0)}, {seconds(1e-9), volts(1.0)}}));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", femtofarads(10.0));
  const spice::Simulator sim{c};
  for (auto _ : state) {
    const auto tr = sim.transient(nanoseconds(100.0), picoseconds(10.0));
    benchmark::DoNotOptimize(tr->sample_count());
  }
}
BENCHMARK(BM_SpiceTransientRc)->Unit(benchmark::kMillisecond);

void BM_CellCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    const auto cc = memsys::characterize(memsys::all_si_cell());
    benchmark::DoNotOptimize(cc.read_delay);
  }
}
BENCHMARK(BM_CellCharacterization)->Unit(benchmark::kMillisecond);

void BM_FlowEpa(benchmark::State& state) {
  const auto table = carbon::StepEnergyTable::calibrated();
  const auto flow = carbon::m3d_igzo_cnfet_flow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.energy_per_wafer(table));
  }
}
BENCHMARK(BM_FlowEpa);

void BM_DiesPerWaferGrid(benchmark::State& state) {
  const carbon::DieSpec die{micrometres(515.0), micrometres(270.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(carbon::dies_per_wafer_grid(die));
  }
}
BENCHMARK(BM_DiesPerWaferGrid)->Unit(benchmark::kMillisecond);

void BM_Isoline(benchmark::State& state) {
  carbon::SystemCarbonProfile m3d{"m3d", grams_co2e(3.63), milliwatts(8.46), watts(0.0),
                                  milliseconds(40.0)};
  carbon::SystemCarbonProfile si{"si", grams_co2e(3.11), milliwatts(9.71), watts(0.0),
                                 milliseconds(40.0)};
  carbon::OperationalScenario scen;
  for (auto _ : state) {
    const auto line = carbon::tcdp_isoline(m3d, si, scen, months(24.0));
    benchmark::DoNotOptimize(line.size());
  }
}
BENCHMARK(BM_Isoline)->Unit(benchmark::kMicrosecond);

void BM_MonteCarlo(benchmark::State& state) {
  carbon::UncertainProfile c;
  c.embodied_per_good_die_g = carbon::Interval::factor(3.63, 1.2);
  c.operational_power_w = carbon::Interval::point(8.46e-3);
  c.execution_time_s = 0.040;
  carbon::UncertainProfile b;
  b.embodied_per_good_die_g = carbon::Interval::factor(3.11, 1.2);
  b.operational_power_w = carbon::Interval::point(9.71e-3);
  b.execution_time_s = 0.040;
  carbon::UncertainScenario s;
  s.ci_use_g_per_kwh = carbon::Interval::factor(380.0, 3.0);
  s.lifetime_months = carbon::Interval::plus_minus(24.0, 6.0);
  for (auto _ : state) {
    const auto mc = carbon::monte_carlo_tcdp_ratio(c, b, s, 10000, 42);
    benchmark::DoNotOptimize(mc.mean);
  }
}
BENCHMARK(BM_MonteCarlo)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
