// Extensions the paper's conclusion names but does not evaluate: cost and
// water accounting for both processes, and CORDOBA-style carbon-efficient
// design-space optimization over (technology x VT x clock).
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/resources.hpp"
#include "ppatc/core/optimize.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace cb = ppatc::carbon;

  bench::begin_manifest("extensions");
  bench::title("Extensions — cost, water, and carbon-efficient design optimization");

  const auto water = cb::WaterTable::typical();
  const auto cost = cb::CostTable::typical();
  const auto si_flow = cb::all_si_7nm_flow();
  const auto m3d_flow = cb::m3d_igzo_cnfet_flow();
  bench::config("water/cost tables", "typical");

  bench::section("E1: ultrapure water (paper conclusion: 'water consumption')");
  std::printf("  %-24s %14s %16s\n", "process", "litres/wafer", "litres/good die");
  std::printf("  %-24s %14.0f %16.4f\n", "all-Si",
              cb::water_litres_per_wafer(si_flow, water),
              cb::water_litres_per_good_die(si_flow, water, 299127, 0.9));
  std::printf("  %-24s %14.0f %16.4f\n", "M3D IGZO/CNFET/Si",
              cb::water_litres_per_wafer(m3d_flow, water),
              cb::water_litres_per_good_die(m3d_flow, water, 606238, 0.5));
  bench::record("all-Si water per wafer", cb::water_litres_per_wafer(si_flow, water), "L");
  bench::record("all-Si water per good die",
                cb::water_litres_per_good_die(si_flow, water, 299127, 0.9), "L");
  bench::record("M3D water per wafer", cb::water_litres_per_wafer(m3d_flow, water), "L");
  bench::record("M3D water per good die",
                cb::water_litres_per_good_die(m3d_flow, water, 606238, 0.5), "L");

  bench::section("E2: wafer cost (paper conclusion: 'cost'; the C of PPACE)");
  std::printf("  %-24s %14s %16s\n", "process", "$/wafer", "$/good die");
  std::printf("  %-24s %14.0f %16.4f\n", "all-Si", cb::cost_dollars_per_wafer(si_flow, cost),
              cb::cost_dollars_per_good_die(si_flow, cost, 299127, 0.9));
  std::printf("  %-24s %14.0f %16.4f\n", "M3D IGZO/CNFET/Si",
              cb::cost_dollars_per_wafer(m3d_flow, cost),
              cb::cost_dollars_per_good_die(m3d_flow, cost, 606238, 0.5));
  bench::record("all-Si cost per wafer", cb::cost_dollars_per_wafer(si_flow, cost), "$");
  bench::record("all-Si cost per good die",
                cb::cost_dollars_per_good_die(si_flow, cost, 299127, 0.9), "$");
  bench::record("M3D cost per wafer", cb::cost_dollars_per_wafer(m3d_flow, cost), "$");
  bench::record("M3D cost per good die",
                cb::cost_dollars_per_good_die(m3d_flow, cost, 606238, 0.5), "$");

  bench::section("E3: carbon-efficient design-space optimization (crc32 workload, 24 months)");
  core::OptimizationGoal goal;
  goal.max_execution_time = units::milliseconds(6.0);
  bench::config("optimization workload", "crc32(48)");
  bench::config("deadline", units::milliseconds(6.0));
  const auto result = core::optimize(core::DesignSpace{}, workloads::crc32(48), goal);
  int feasible = 0;
  for (const auto& p : result.all_points) feasible += p.feasible ? 1 : 0;
  std::printf("  explored %zu points (%d close timing); deadline 6 ms per run\n",
              result.all_points.size(), feasible);
  bench::record("design points explored", static_cast<double>(result.all_points.size()), "points");
  bench::record("feasible design points", static_cast<double>(feasible), "points");
  std::printf("  top designs by tCDP:\n");
  std::printf("  %-30s %-5s %8s %12s %12s %12s\n", "technology", "VT", "f MHz", "exec ms",
              "tC g", "tCDP g.s");
  for (std::size_t i = 0; i < result.ranked.size() && i < 6; ++i) {
    const auto& p = result.ranked[i];
    std::printf("  %-30s %-5s %8.0f %12.3f %12.3f %12.5f\n",
                core::to_string(p.spec.tech), device::to_string(p.spec.vt),
                in_megahertz(p.spec.fclk), 1e3 * in_seconds(p.evaluation.execution_time),
                in_grams_co2e(p.total_carbon), in_gco2e_seconds(p.tcdp));
    const std::string rank = "rank " + std::to_string(i + 1);
    bench::record_text(rank + " design", std::string{core::to_string(p.spec.tech)} + " " +
                                             device::to_string(p.spec.vt) + " @ " +
                                             std::to_string(static_cast<int>(
                                                 in_megahertz(p.spec.fclk))) +
                                             " MHz");
    bench::record(rank + " tCDP", in_gco2e_seconds(p.tcdp), "gCO2e.s");
    bench::record(rank + " total carbon", in_grams_co2e(p.total_carbon), "gCO2e");
  }
  std::printf("  (execution time, total carbon) Pareto front:\n");
  for (const auto& p : result.pareto) {
    std::printf("    %-30s %-5s %8.0f MHz: %8.3f ms, %8.3f g\n",
                core::to_string(p.spec.tech), device::to_string(p.spec.vt),
                in_megahertz(p.spec.fclk), 1e3 * in_seconds(p.evaluation.execution_time),
                in_grams_co2e(p.total_carbon));
  }
  bench::record("Pareto front size", static_cast<double>(result.pareto.size()), "points");
  return bench::finish_manifest();
}
