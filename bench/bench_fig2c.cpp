// Reproduces Fig. 2c: embodied carbon per 300 mm wafer for the all-Si and
// M3D processes across four electricity grids, with the MPA/GPA/EPA
// breakdown and the paper's 1.31x average-ratio headline.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/carbon/embodied.hpp"
#include "ppatc/carbon/flows.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace cb = ppatc::carbon;

  bench::begin_manifest("fig2c");
  bench::title("Figure 2c — embodied carbon per wafer (all-Si vs M3D IGZO/CNFET/Si)");

  const cb::EmbodiedModel si = cb::all_si_embodied_model();
  const cb::EmbodiedModel m3d = cb::m3d_embodied_model();
  bench::config("wafer", "300 mm");
  bench::config("iN7 reference fab energy per wafer", cb::in7_reference_energy_per_wafer());

  bench::section("fabrication energy (EPA)");
  bench::compare_row("all-Si EPA", in_kilowatt_hours(si.energy_per_wafer()),
                     0.79 * in_kilowatt_hours(cb::in7_reference_energy_per_wafer()), "kWh/wafer");
  bench::compare_row("M3D EPA", in_kilowatt_hours(m3d.energy_per_wafer()),
                     1.22 * in_kilowatt_hours(cb::in7_reference_energy_per_wafer()), "kWh/wafer");
  bench::compare_row("all-Si / iN7-EUV ratio",
                     si.energy_per_wafer() / cb::in7_reference_energy_per_wafer(), 0.79, "x");
  bench::compare_row("M3D / iN7-EUV ratio",
                     m3d.energy_per_wafer() / cb::in7_reference_energy_per_wafer(), 1.22, "x");

  bench::section("per-wafer embodied carbon by grid (kgCO2e)");
  std::printf("  %-10s %8s %14s %14s %8s\n", "grid", "gCO2/kWh", "all-Si", "M3D", "ratio");
  const double paper_si[] = {837.0, 1267.0, 512.0, 1016.0};
  const double paper_m3d[] = {1100.0, 1765.0, 598.0, 1377.0};
  double ratio_sum = 0.0;
  int i = 0;
  for (const auto& grid : cb::grids::figure2c()) {
    const double cs = in_kilograms_co2e(si.carbon_per_wafer(grid));
    const double cm = in_kilograms_co2e(m3d.carbon_per_wafer(grid));
    ratio_sum += cm / cs;
    std::printf("  %-10s %8.0f %7.1f (%5.0f) %7.1f (%5.0f) %7.3fx\n", grid.name.c_str(),
                in_grams_per_kilowatt_hour(grid.intensity), cs, paper_si[i], cm, paper_m3d[i],
                cm / cs);
    bench::record_vs_paper(grid.name + " all-Si", cs, paper_si[i], "kgCO2e");
    bench::record_vs_paper(grid.name + " M3D", cm, paper_m3d[i], "kgCO2e");
    ++i;
  }
  bench::compare_row("average M3D/all-Si ratio (headline)", ratio_sum / 4.0, 1.31, "x");

  bench::section("U.S.-grid breakdown (kgCO2e/wafer)");
  for (const auto* model : {&si, &m3d}) {
    const auto b = model->per_wafer(cb::grids::us());
    std::printf("  %-28s MPA %7.1f  GPA %7.1f  fab-energy %7.1f  total %7.1f\n",
                model->flow().name().c_str(), in_kilograms_co2e(b.materials),
                in_kilograms_co2e(b.gases), in_kilograms_co2e(b.fab_energy),
                in_kilograms_co2e(b.total()));
    const std::string flow = model->flow().name();
    bench::record(flow + " MPA", in_kilograms_co2e(b.materials), "kgCO2e");
    bench::record(flow + " GPA", in_kilograms_co2e(b.gases), "kgCO2e");
    bench::record(flow + " fab-energy", in_kilograms_co2e(b.fab_energy), "kgCO2e");
    bench::record(flow + " total", in_kilograms_co2e(b.total()), "kgCO2e");
  }
  return bench::finish_manifest();
}
