// Reproduces Table II: the full PPAtC summary of the case-study system in
// both technologies, row by row against the paper's values.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/core/system.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;

  bench::begin_manifest("table2");
  bench::title("Table II — PPAtC summary (M0 + eDRAM, matmult-int @ 500 MHz, U.S. grid)");

  const auto t2 = core::table2(workloads::matmult_int());
  bench::config("workload", "matmult-int");
  bench::config("clock", megahertz(500.0));
  bench::config("grid", "us");

  struct PaperColumn {
    double m0_pj, mem_pj, cycles, mem_mm2, tot_mm2, h_um, w_um, emb_kg, dpw, emb_gd;
  };
  const PaperColumn paper_si{1.42, 18.0, 20047348, 0.068, 0.139, 270, 515, 837, 299127, 3.11};
  const PaperColumn paper_m3d{1.42, 15.5, 20047348, 0.025, 0.053, 159, 334, 1100, 606238, 3.63};

  const auto print_column = [](const core::SystemEvaluation& e, const PaperColumn& p) {
    bench::section(e.system_name);
    bench::text_row("clock frequency", "500 MHz (paper: 500 MHz)");
    bench::compare_row("M0 dynamic energy per cycle", in_picojoules(e.m0_energy_per_cycle),
                       p.m0_pj, "pJ");
    bench::compare_row("average memory energy per cycle",
                       in_picojoules(e.memory_energy_per_cycle), p.mem_pj, "pJ");
    bench::compare_row("clock cycles to run matmult-int", static_cast<double>(e.cycles), p.cycles,
                       "cycles");
    bench::compare_row("64 kB memory area footprint", in_square_millimetres(e.memory_area),
                       p.mem_mm2, "mm^2");
    bench::compare_row("total area footprint (memory + M0)", in_square_millimetres(e.total_area),
                       p.tot_mm2, "mm^2");
    bench::compare_row("die height", in_micrometres(e.die_height), p.h_um, "um");
    bench::compare_row("die width", in_micrometres(e.die_width), p.w_um, "um");
    bench::compare_row("embodied carbon per wafer (U.S. grid)",
                       in_kilograms_co2e(e.embodied_per_wafer), p.emb_kg, "kgCO2e");
    bench::compare_row("total die count per 300 mm wafer",
                       static_cast<double>(e.dies_per_wafer), p.dpw, "dies");
    bench::value_row("yield (paper's demonstration value)", e.yield * 100.0, "%");
    bench::compare_row("embodied carbon per good die",
                       in_grams_co2e(e.embodied_per_good_die), p.emb_gd, "gCO2e");
    bench::value_row("operational power while running",
                     in_milliwatts(e.operational_power), "mW");
  };
  print_column(t2.all_si, paper_si);
  print_column(t2.m3d, paper_m3d);

  bench::section("Sec. III-C derived ratios");
  bench::compare_row("all-Si / M3D die area", t2.all_si.total_area / t2.m3d.total_area, 2.72, "x");
  const double good_si = static_cast<double>(t2.all_si.dies_per_wafer) * t2.all_si.yield;
  const double good_m3d = static_cast<double>(t2.m3d.dies_per_wafer) * t2.m3d.yield;
  bench::compare_row("good-die ratio (M3D / all-Si)", good_m3d / good_si, 1.13, "x");
  bench::compare_row("embodied per good die (M3D / all-Si)",
                     t2.m3d.embodied_per_good_die / t2.all_si.embodied_per_good_die, 1.17, "x");
  return bench::finish_manifest();
}
