// Reproduces Fig. 6b: variation of the tCDP isoline under uncertainty in
// system lifetime (+/-6 months), CI_use (x3 / /3), and M3D yield (10%/90%),
// plus interval-arithmetic and Monte-Carlo robustness summaries.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/carbon/isoline.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/core/system.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace cb = ppatc::carbon;

  bench::begin_manifest("fig6b");
  bench::title("Figure 6b — isoline variation under uncertainty (24-month nominal)");

  const auto t2 = core::table2(workloads::matmult_int());
  cb::OperationalScenario scen;
  scen.use_intensity = cb::DiurnalIntensity::flat(cb::grids::us().intensity);
  bench::config("grid", "us");
  bench::config("nominal lifetime", months(24.0));
  bench::config("uncertainty", "lifetime +/-6 months, CI_use x3 / /3, M3D yield 10%/90%");

  const auto variants = cb::isoline_variants(t2.m3d.carbon_profile(), t2.all_si.carbon_profile(),
                                             scen, months(24.0));

  // Print the isoline y(x) of every variant side by side.
  std::printf("  %-8s", "x");
  for (const auto& v : variants) std::printf(" %14s", v.label.c_str());
  std::printf("\n");
  const std::size_t n = variants.front().isoline.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  %-8.2f", variants.front().isoline[i].embodied_scale);
    for (const auto& v : variants) {
      const auto& pt = v.isoline[i];
      char key[96];
      std::snprintf(key, sizeof key, "%s isoline y @ x=%.3f", v.label.c_str(),
                    pt.embodied_scale);
      if (pt.energy_scale) {
        std::printf(" %14.4f", *pt.energy_scale);
        bench::record(key, *pt.energy_scale, "x", {.rel_tol = 1e-4});
      } else {
        std::printf(" %14s", "-");
        bench::record_text(key, "outside box");
      }
    }
    std::printf("\n");
  }

  bench::section("robust comparison at the nominal design point");
  cb::UncertainProfile m3d;
  m3d.embodied_per_good_die_g =
      cb::Interval::factor(in_grams_co2e(t2.m3d.embodied_per_good_die), 1.2);
  m3d.operational_power_w = cb::Interval::point(in_watts(t2.m3d.operational_power));
  m3d.execution_time = t2.m3d.execution_time;
  cb::UncertainProfile si;
  si.embodied_per_good_die_g =
      cb::Interval::factor(in_grams_co2e(t2.all_si.embodied_per_good_die), 1.2);
  si.operational_power_w = cb::Interval::point(in_watts(t2.all_si.operational_power));
  si.execution_time = t2.all_si.execution_time;
  cb::UncertainScenario uscen;
  uscen.ci_use_g_per_kwh = cb::Interval::factor(380.0, 3.0);
  uscen.lifetime_months = cb::Interval::plus_minus(24.0, 6.0);

  const cb::Interval ratio = cb::tcdp_ratio_interval(m3d, si, uscen);
  std::printf("  tCDP(M3D)/tCDP(all-Si) interval: [%.3f, %.3f]\n", ratio.lo, ratio.hi);
  bench::record("tCDP ratio interval lo", ratio.lo, "x");
  bench::record("tCDP ratio interval hi", ratio.hi, "x");
  const auto verdict = cb::robust_compare(m3d, si, uscen);
  bench::text_row("robust verdict",
                  verdict == cb::RobustVerdict::kCandidateAlwaysWins  ? "M3D always wins"
                  : verdict == cb::RobustVerdict::kBaselineAlwaysWins ? "all-Si always wins"
                                                                      : "indeterminate (as in the paper: uncertainty matters)");

  const auto mc = cb::monte_carlo_tcdp_ratio(m3d, si, uscen, 20000, 20251204);
  std::printf("  Monte Carlo (n=%zu): mean %.3f, p05 %.3f, p50 %.3f, p95 %.3f\n", mc.samples,
              mc.mean, mc.p05, mc.p50, mc.p95);
  std::printf("  P(M3D more carbon-efficient) = %.1f%%\n",
              100.0 * mc.probability_candidate_wins);
  bench::config("Monte Carlo", "n=20000, seed=20251204");
  bench::record("MC mean tCDP ratio", mc.mean, "x");
  bench::record("MC p05", mc.p05, "x");
  bench::record("MC p50", mc.p50, "x");
  bench::record("MC p95", mc.p95, "x");
  bench::record("MC P(M3D wins)", mc.probability_candidate_wins, "frac");
  return bench::finish_manifest();
}
