// Reproduces Fig. 4: Cortex-M0 average energy per cycle vs clock frequency
// for the four ASAP7 VT flavors (matmul-int workload scaling). Points where
// synthesis fails timing are printed as "----", exactly the holes in the
// paper's scatter.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/synth/m0.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace sy = ppatc::synth;

  bench::begin_manifest("fig4");
  bench::title("Figure 4 — M0 energy per cycle vs f_CLK, by VT flavor");

  bench::config("workload", "matmul-int scaling");
  bench::config("f_CLK sweep", "100..1000 MHz");
  const auto sweep = sy::figure4_sweep();

  std::printf("  %-8s", "f (MHz)");
  for (const auto vt : {device::VtFlavor::kHvt, device::VtFlavor::kRvt, device::VtFlavor::kLvt,
                        device::VtFlavor::kSlvt}) {
    std::printf(" %10s", device::to_string(vt));
  }
  std::printf("   (pJ/cycle)\n");

  for (int f = 100; f <= 1000; f += 100) {
    std::printf("  %-8d", f);
    for (const auto vt : {device::VtFlavor::kHvt, device::VtFlavor::kRvt, device::VtFlavor::kLvt,
                          device::VtFlavor::kSlvt}) {
      bool printed = false;
      for (const auto& p : sweep) {
        if (p.vt == vt && std::abs(in_megahertz(p.fclk) - f) < 1e-6) {
          const std::string cell =
              std::string{device::to_string(vt)} + " @ " + std::to_string(f) + " MHz";
          if (p.result) {
            std::printf(" %10.3f", in_picojoules(p.result->energy_per_cycle));
            bench::record(cell, in_picojoules(p.result->energy_per_cycle), "pJ/cycle");
          } else {
            std::printf(" %10s", "----");
            bench::record_text(cell, "fails timing");
          }
          printed = true;
        }
      }
      if (!printed) std::printf(" %10s", "?");
    }
    std::printf("\n");
  }

  bench::section("anchors and model properties");
  sy::M0Options rvt;
  rvt.vt = device::VtFlavor::kRvt;
  const auto s500 = sy::M0Model{rvt}.synthesize(megahertz(500));
  bench::compare_row("RVT @ 500 MHz energy/cycle (Table II)",
                     in_picojoules(s500.energy_per_cycle), 1.42, "pJ");
  for (const auto vt : {device::VtFlavor::kHvt, device::VtFlavor::kRvt, device::VtFlavor::kLvt,
                        device::VtFlavor::kSlvt}) {
    sy::M0Options o;
    o.vt = vt;
    const sy::M0Model m{o};
    std::printf("  %-6s FO4 %6.2f ps   fmax %7.1f MHz   leakage %9.3f uW\n",
                device::to_string(vt), in_picoseconds(m.fo4_delay()), in_megahertz(m.fmax()),
                in_microwatts(m.leakage_power()));
    const std::string flavor = device::to_string(vt);
    bench::record(flavor + " FO4 delay", in_picoseconds(m.fo4_delay()), "ps");
    bench::record(flavor + " fmax", in_megahertz(m.fmax()), "MHz");
    bench::record(flavor + " leakage", in_microwatts(m.leakage_power()), "uW");
  }
  return bench::finish_manifest();
}
