// Reproduces Fig. 2d: steps in EUV metal-layer fabrication and the per-
// process-area energies, including the paper's worked example (deposition:
// 3 steps, 4 kWh total -> 1.33 kWh/step), plus the full flow inventories.
#include <cstdio>

#include "bench_util.hpp"
#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/process_flow.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace cb = ppatc::carbon;

  bench::begin_manifest("fig2d");
  bench::title("Figure 2d — EUV metal-layer step inventory and per-area energies");

  const auto table = cb::StepEnergyTable::calibrated();
  bench::config("step-energy table", "calibrated (Fig. 2d worked example)");

  cb::ProcessFlow one_layer{"one 36 nm EUV metal/via pair"};
  one_layer.add_metal_via_pair(cb::MetalPitch::k36nm, "M1");
  const auto counts = one_layer.step_count_by_area();
  const auto energies = one_layer.energy_by_area(table);

  std::printf("  %-16s %6s %14s %16s\n", "process area", "steps", "total (kWh)", "per step (kWh)");
  for (std::size_t a = 0; a < cb::kProcessAreaCount; ++a) {
    const double n = counts[a];
    const double e = in_kilowatt_hours(energies[a]);
    std::printf("  %-16s %6.0f %14.2f %16.3f\n",
                cb::to_string(static_cast<cb::ProcessArea>(a)), n, e, n > 0 ? e / n : 0.0);
    const std::string area = cb::to_string(static_cast<cb::ProcessArea>(a));
    bench::record("one-pair " + area + " steps", n, "steps");
    bench::record("one-pair " + area + " energy", e, "kWh");
  }
  bench::compare_row("deposition kWh/step (paper's worked example)",
                     in_kilowatt_hours(table.step_energy(cb::ProcessArea::kDeposition)),
                     4.0 / 3.0, "kWh");
  bench::value_row("total, one 36 nm pair", in_kilowatt_hours(one_layer.energy_per_wafer(table)),
                   "kWh/wafer");

  bench::section("metal/via-pair energy vs pitch class");
  for (const auto pitch : {cb::MetalPitch::k36nm, cb::MetalPitch::k48nm, cb::MetalPitch::k64nm,
                           cb::MetalPitch::k80nm}) {
    cb::ProcessFlow f{"pair"};
    f.add_metal_via_pair(pitch, "M");
    std::printf("  %-8s (%-18s) %8.2f kWh/wafer\n", cb::to_string(pitch),
                cb::to_string(cb::litho_for(pitch)), in_kilowatt_hours(f.energy_per_wafer(table)));
    bench::record(std::string{cb::to_string(pitch)} + " pair energy",
                  in_kilowatt_hours(f.energy_per_wafer(table)), "kWh/wafer");
  }

  bench::section("full-flow step inventory (Eq. 4 count columns)");
  std::printf("  %-16s %10s %10s\n", "process area", "all-Si", "M3D");
  const auto si_counts = cb::all_si_7nm_flow().step_count_by_area();
  const auto m3d_counts = cb::m3d_igzo_cnfet_flow().step_count_by_area();
  for (std::size_t a = 0; a < cb::kProcessAreaCount; ++a) {
    std::printf("  %-16s %10.0f %10.0f\n", cb::to_string(static_cast<cb::ProcessArea>(a)),
                si_counts[a], m3d_counts[a]);
    const std::string area = cb::to_string(static_cast<cb::ProcessArea>(a));
    bench::record(area + " all-Si steps", si_counts[a], "steps");
    bench::record(area + " M3D steps", m3d_counts[a], "steps");
  }

  bench::section("BEOL device-tier energies");
  {
    cb::ProcessFlow cnt{"one CNFET tier"};
    cb::append_cnfet_tier(cnt, 1);
    cb::ProcessFlow igzo{"one IGZO tier"};
    cb::append_igzo_tier(igzo, 1);
    bench::value_row("CNFET tier (device steps only)",
                     in_kilowatt_hours(cnt.energy_per_wafer(table)), "kWh/wafer");
    bench::value_row("IGZO tier (device steps only)",
                     in_kilowatt_hours(igzo.energy_per_wafer(table)), "kWh/wafer");
    bench::value_row("FEOL+MOL (lumped, iN7-equivalent)",
                     in_kilowatt_hours(cb::feol_mol_energy_per_wafer()), "kWh/wafer");
  }
  return bench::finish_manifest();
}
